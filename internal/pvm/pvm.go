// Package pvm implements a PVM subset — the second parallel-paradigm
// middleware of the paper (§2.1's "a MPI-based component could be
// connected to a PVM-based component"). Task identifiers, typed pack
// buffers (pvm_initsend/pkint/pkdouble/pkbytes), tagged send/receive
// with wildcard matching. Transport: Circuit, like MPI, so both
// parallel middleware systems share the SAN through MadIO arbitration.
package pvm

import (
	"encoding/binary"
	"fmt"
	"math"

	"padico/internal/madapi"
	"padico/internal/model"
	"padico/internal/vtime"
)

// AnyTID and AnyTag are receive wildcards.
const (
	AnyTID = -1
	AnyTag = -1
)

// TID is a PVM task identifier (== circuit rank here).
type TID int

// Buffer is a typed pack/unpack buffer.
type Buffer struct {
	buf []byte
	off int
}

// NewBuffer returns an empty send buffer (pvm_initsend).
func NewBuffer() *Buffer { return &Buffer{} }

// PkInt packs an int64 (pvm_pkint widened).
func (b *Buffer) PkInt(v int64) *Buffer {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], uint64(v))
	b.buf = append(b.buf, x[:]...)
	return b
}

// PkDouble packs a float64.
func (b *Buffer) PkDouble(v float64) *Buffer { return b.PkInt(int64(math.Float64bits(v))) }

// PkBytes packs a length-prefixed byte string.
func (b *Buffer) PkBytes(v []byte) *Buffer {
	var x [4]byte
	binary.BigEndian.PutUint32(x[:], uint32(len(v)))
	b.buf = append(b.buf, x[:]...)
	b.buf = append(b.buf, v...)
	return b
}

// PkString packs a string.
func (b *Buffer) PkString(s string) *Buffer { return b.PkBytes([]byte(s)) }

// UpkInt unpacks an int64.
func (b *Buffer) UpkInt() int64 {
	v := int64(binary.BigEndian.Uint64(b.buf[b.off:]))
	b.off += 8
	return v
}

// UpkDouble unpacks a float64.
func (b *Buffer) UpkDouble() float64 { return math.Float64frombits(uint64(b.UpkInt())) }

// UpkBytes unpacks a byte string.
func (b *Buffer) UpkBytes() []byte {
	n := int(binary.BigEndian.Uint32(b.buf[b.off:]))
	b.off += 4
	v := b.buf[b.off : b.off+n]
	b.off += n
	return v
}

// UpkString unpacks a string.
func (b *Buffer) UpkString() string { return string(b.UpkBytes()) }

// message is one queued incoming message.
type message struct {
	src TID
	tag int
	buf []byte
}

// Task is one PVM task (per rank).
type Task struct {
	k  *vtime.Kernel
	ch madapi.Channel
	rx []*message
	nw *vtime.Cond

	MsgsSent int64
	MsgsRecv int64
}

// New enrolls a task over a Madeleine-interface channel (pvm_mytid).
func New(k *vtime.Kernel, ch madapi.Channel) *Task {
	t := &Task{k: k, ch: ch, nw: vtime.NewCond(fmt.Sprintf("pvm:%d", ch.Self()))}
	k.GoDaemon(fmt.Sprintf("pvm-rx:%d", ch.Self()), t.pump)
	return t
}

// ModuleName implements core.Module.
func (t *Task) ModuleName() string { return "pvm" }

// MyTID returns the task id.
func (t *Task) MyTID() TID { return TID(t.ch.Self()) }

// NTasks returns the virtual machine size.
func (t *Task) NTasks() int { return t.ch.Size() }

func (t *Task) pump(p *vtime.Proc) {
	for {
		in := t.ch.BeginUnpacking(p)
		hdr := in.Unpack(8, madapi.ReceiveExpress)
		tag := int(int32(binary.BigEndian.Uint32(hdr)))
		n := int(binary.BigEndian.Uint32(hdr[4:]))
		var data []byte
		if n > 0 {
			data = in.Unpack(n, madapi.ReceiveCheaper)
		}
		in.EndUnpacking()
		p.Consume(model.PVMRequestCost)
		t.MsgsRecv++
		t.rx = append(t.rx, &message{src: TID(in.Src()), tag: tag, buf: append([]byte(nil), data...)})
		t.nw.Broadcast()
	}
}

// Send transmits a packed buffer (pvm_send).
func (t *Task) Send(dst TID, tag int, b *Buffer) {
	t.MsgsSent++
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr, uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(b.buf)))
	data := append([]byte(nil), b.buf...)
	t.k.Schedule(model.PVMRequestCost, func() {
		out := t.ch.BeginPacking(int(dst))
		out.Pack(hdr, madapi.SendSafer)
		if len(data) > 0 {
			out.Pack(data, madapi.SendSafer)
		}
		out.EndPacking()
	})
}

// Recv blocks for a message matching (src, tag); wildcards allowed
// (pvm_recv). It returns the unpack buffer and the actual source/tag.
func (t *Task) Recv(p *vtime.Proc, src TID, tag int) (*Buffer, TID, int) {
	for {
		for i, m := range t.rx {
			if (src == AnyTID || src == m.src) && (tag == AnyTag || tag == m.tag) {
				t.rx = append(t.rx[:i], t.rx[i+1:]...)
				return &Buffer{buf: m.buf}, m.src, m.tag
			}
		}
		t.nw.Wait(p)
	}
}

// Probe reports whether a matching message is queued (pvm_probe).
func (t *Task) Probe(src TID, tag int) bool {
	for _, m := range t.rx {
		if (src == AnyTID || src == m.src) && (tag == AnyTag || tag == m.tag) {
			return true
		}
	}
	return false
}

// Mcast sends a buffer to several tasks (pvm_mcast).
func (t *Task) Mcast(dsts []TID, tag int, b *Buffer) {
	for _, d := range dsts {
		t.Send(d, tag, b)
	}
}
