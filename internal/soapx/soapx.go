// Package soapx implements a SOAP-style XML-envelope RPC (the paper's
// gSOAP, §4.3) over VLink: requests and replies travel as XML documents
// with string-typed parameters, which is why its per-byte cost dwarfs
// the binary middleware — and why it is the natural fit for the loosely
// coupled monitoring/steering interactions of §2.1 rather than bulk
// transfer.
package soapx

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"

	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// ErrFault is the base error for SOAP faults.
var ErrFault = errors.New("soap: fault")

// Envelope is the XML message shape.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    Body     `xml:"Body"`
}

// Body carries the operation and its parameters.
type Body struct {
	Operation string  `xml:"Operation"`
	Params    []Param `xml:"Param"`
	Fault     string  `xml:"Fault,omitempty"`
}

// Param is one named string parameter.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// Handler serves one operation.
type Handler func(p *vtime.Proc, params map[string]string) (map[string]string, error)

// Server is a SOAP endpoint.
type Server struct {
	k        *vtime.Kernel
	handlers map[string]Handler

	Requests int64
}

// NewServer creates a SOAP server and activates it on driver/port.
func NewServer(k *vtime.Kernel, ep *vlink.Endpoint, driver string, port int) (*Server, error) {
	s := &Server{k: k, handlers: make(map[string]Handler)}
	ln, err := ep.Listen(driver, port)
	if err != nil {
		return nil, err
	}
	ln.SetAcceptHandler(func(v *vlink.VLink) { s.serve(v) })
	return s, nil
}

// ModuleName implements core.Module.
func (s *Server) ModuleName() string { return "gsoap" }

// Handle binds an operation.
func (s *Server) Handle(op string, h Handler) { s.handlers[op] = h }

func (s *Server) serve(v *vlink.VLink) {
	s.k.GoDaemon("soap-serve", func(p *vtime.Proc) {
		for {
			doc, err := readDoc(p, v)
			if err != nil {
				return
			}
			p.Consume(model.SOAPRequestCost + model.SOAPPerByte.Cost(len(doc)))
			var env Envelope
			var reply Envelope
			if err := xml.Unmarshal(doc, &env); err != nil {
				reply.Body.Fault = err.Error()
			} else if h, ok := s.handlers[env.Body.Operation]; !ok {
				reply.Body.Fault = "no such operation: " + env.Body.Operation
			} else {
				params := make(map[string]string, len(env.Body.Params))
				for _, pr := range env.Body.Params {
					params[pr.Name] = pr.Value
				}
				out, err := h(p, params)
				if err != nil {
					reply.Body.Fault = err.Error()
				} else {
					reply.Body.Operation = env.Body.Operation + "Response"
					reply.Body.Params = sortedParams(out)
				}
			}
			s.Requests++
			raw, _ := xml.Marshal(reply)
			p.Consume(model.SOAPRequestCost + model.SOAPPerByte.Cost(len(raw)))
			writeDoc(p, v, raw)
		}
	})
}

// Client invokes SOAP operations over one connection.
type Client struct {
	k *vtime.Kernel
	v *vlink.VLink
}

// Dial connects a SOAP client.
func Dial(p *vtime.Proc, ep *vlink.Endpoint, driver string, node topology.NodeID, port int) (*Client, error) {
	v, err := ep.ConnectWait(p, driver, vlink.Addr{Node: node, Port: port})
	if err != nil {
		return nil, err
	}
	return &Client{k: p.Kernel(), v: v}, nil
}

// Call performs one request/response exchange.
func (c *Client) Call(p *vtime.Proc, op string, params map[string]string) (map[string]string, error) {
	env := Envelope{Body: Body{Operation: op, Params: sortedParams(params)}}
	raw, err := xml.Marshal(env)
	if err != nil {
		return nil, err
	}
	p.Consume(model.SOAPRequestCost + model.SOAPPerByte.Cost(len(raw)))
	writeDoc(p, c.v, raw)
	doc, err := readDoc(p, c.v)
	if err != nil {
		return nil, err
	}
	p.Consume(model.SOAPRequestCost + model.SOAPPerByte.Cost(len(doc)))
	var reply Envelope
	if err := xml.Unmarshal(doc, &reply); err != nil {
		return nil, err
	}
	if reply.Body.Fault != "" {
		return nil, fmt.Errorf("%w: %s", ErrFault, reply.Body.Fault)
	}
	out := make(map[string]string, len(reply.Body.Params))
	for _, pr := range reply.Body.Params {
		out[pr.Name] = pr.Value
	}
	return out, nil
}

// Close shuts the client connection.
func (c *Client) Close() { c.v.Close() }

// sortedParams renders a map in deterministic order.
func sortedParams(m map[string]string) []Param {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort: tiny n
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]Param, 0, len(keys))
	for _, k := range keys {
		out = append(out, Param{Name: k, Value: m[k]})
	}
	return out
}

func writeDoc(p *vtime.Proc, v *vlink.VLink, doc []byte) {
	hdr := make([]byte, 4, 4+len(doc))
	binary.BigEndian.PutUint32(hdr, uint32(len(doc)))
	v.Write(p, append(hdr, doc...))
}

func readDoc(p *vtime.Proc, v *vlink.VLink) ([]byte, error) {
	var hdr [4]byte
	if _, err := v.ReadFull(p, hdr[:]); err != nil {
		return nil, err
	}
	doc := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := v.ReadFull(p, doc); err != nil {
		return nil, err
	}
	return doc, nil
}
