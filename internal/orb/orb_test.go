package orb

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: CDR encode/decode round-trips arbitrary primitive mixes.
func TestQuickCDRRoundTrip(t *testing.T) {
	f := func(u32 uint32, u64 uint64, f64 float64, s string, b []byte, fs []float64) bool {
		if math.IsNaN(f64) {
			return true // NaN != NaN; CDR carries bits fine but compare fails
		}
		e := NewEncoder()
		e.PutU32(u32)
		e.PutU64(u64)
		e.PutF64(f64)
		e.PutString(s)
		e.PutBytes(b)
		e.PutF64Seq(fs)
		d := NewDecoder(e.Bytes())
		if d.U32() != u32 || d.U64() != u64 || d.F64() != f64 || d.String() != s {
			return false
		}
		got := d.Bytes()
		if len(got) != len(b) {
			return false
		}
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		seq := d.F64Seq()
		if len(seq) != len(fs) {
			return false
		}
		for i := range fs {
			if seq[i] != fs[i] && !(math.IsNaN(seq[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIORRoundTrip(t *testing.T) {
	cases := []struct {
		node int
		port int
		key  string
	}{
		{0, 5000, "counter"},
		{42, 1, "a/b/c"},
		{7, 65535, ""},
	}
	for _, c := range cases {
		o := &ORB{port: c.port}
		o.ep = nil
		_ = o
		ior := "IOR:" + itoa(c.node) + ":" + itoa(c.port) + "/" + c.key
		n, pt, k, err := ParseIOR(ior)
		if err != nil || int(n) != c.node || pt != c.port || k != c.key {
			t.Fatalf("ParseIOR(%q) = %v %v %q %v", ior, n, pt, k, err)
		}
	}
	for _, bad := range []string{"", "IOR:", "IOR:1/x", "IOR:a:b/c", "http://x"} {
		if _, _, _, err := ParseIOR(bad); err == nil {
			t.Fatalf("ParseIOR(%q) accepted", bad)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Property: the GIOP framer reassembles messages across arbitrary chunk
// boundaries.
func TestQuickFramerReassembly(t *testing.T) {
	f := func(bodies [][]byte, cuts []uint8) bool {
		if len(bodies) == 0 || len(bodies) > 10 {
			return true
		}
		var wire []byte
		for i, b := range bodies {
			wire = append(wire, frame(kindRequest, uint32(i), b)...)
		}
		fr := &framer{}
		var got [][]byte
		var ids []uint32
		emit := func(k msgKind, id uint32, body []byte) {
			got = append(got, body)
			ids = append(ids, id)
		}
		// Feed in arbitrary-size chunks.
		off := 0
		ci := 0
		for off < len(wire) {
			n := 1
			if len(cuts) > 0 {
				n = int(cuts[ci%len(cuts)])%97 + 1
				ci++
			}
			if off+n > len(wire) {
				n = len(wire) - off
			}
			fr.feed(wire[off:off+n], emit)
			off += n
		}
		if len(got) != len(bodies) {
			return false
		}
		for i, b := range bodies {
			if ids[i] != uint32(i) || len(got[i]) != len(b) {
				return false
			}
			for j := range b {
				if got[i][j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesDistinguishCopying(t *testing.T) {
	if OmniORB3.Copying || OmniORB4.Copying {
		t.Fatal("omniORB profiles must be zero-copy")
	}
	if !Mico.Copying || !ORBacus.Copying {
		t.Fatal("Mico/ORBacus profiles must copy (paper §5)")
	}
	if Mico.PerByte <= OmniORB4.PerByte*10 {
		t.Fatal("copying profile per-byte cost should dwarf zero-copy")
	}
}
