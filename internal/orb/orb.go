// Package orb implements the distributed-paradigm middleware of the
// paper's evaluation: a CORBA-like ORB with CDR marshalling, a
// GIOP-shaped request/reply protocol, stringified object references
// (IORs) and a basic object adapter. It runs over VLink — through
// SysWrap in PadicoTM terms — so it transparently uses whatever network
// and method the selector picked (§4.3: omniORB, Mico, ORBacus were
// ported "with no change in their code").
//
// Four performance profiles reproduce the published implementations:
// omniORB 3/4 marshal in place (zero-copy), Mico and ORBacus "always
// copy data for marshalling and unmarshalling" (§5) — which is exactly
// what separates their 55-63 MB/s from omniORB's 236-238 MB/s in
// Fig. 3 and Table 1.
package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"padico/internal/model"
	"padico/internal/topology"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Exported errors.
var (
	ErrBadIOR    = errors.New("orb: malformed IOR")
	ErrNoServant = errors.New("orb: no servant for object key")
	ErrNoOp      = errors.New("orb: no such operation")
)

// Profile captures one CORBA implementation's performance behaviour.
type Profile struct {
	Name        string
	RequestCost time.Duration // per message per side (marshal/dispatch)
	PerByte     model.PerByte // per payload byte per side
	Copying     bool          // marshalling copies payloads (Mico/ORBacus)
}

// The implementations measured in the paper.
var (
	OmniORB3 = Profile{Name: "omniORB-3.0.2", RequestCost: model.OmniORB3RequestCost, PerByte: model.OmniORB3PerByte}
	OmniORB4 = Profile{Name: "omniORB-4.0.0", RequestCost: model.OmniORB4RequestCost, PerByte: model.OmniORB4PerByte}
	Mico     = Profile{Name: "Mico-2.3.7", RequestCost: model.MicoRequestCost, PerByte: model.MicoCopyPerByte, Copying: true}
	ORBacus  = Profile{Name: "ORBacus-4.0.5", RequestCost: model.ORBacusRequestCost, PerByte: model.ORBacusCopyPerByte, Copying: true}
)

// ---------------------------------------------------------------------
// CDR marshalling (big-endian subset).

// Encoder marshals values CDR-style.
type Encoder struct{ buf []byte }

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the marshalled body.
func (e *Encoder) Bytes() []byte { return e.buf }

// PutU32 appends an unsigned long.
func (e *Encoder) PutU32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutU64 appends an unsigned long long.
func (e *Encoder) PutU64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutF64 appends a double.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed octet sequence.
func (e *Encoder) PutBytes(b []byte) {
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutF64Seq appends a sequence<double>.
func (e *Encoder) PutF64Seq(v []float64) {
	e.PutU32(uint32(len(v)))
	for _, f := range v {
		e.PutF64(f)
	}
}

// Decoder unmarshals CDR bodies.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a marshalled body.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// U32 reads an unsigned long.
func (d *Decoder) U32() uint32 {
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads an unsigned long long.
func (d *Decoder) U64() uint64 {
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// F64 reads a double.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a string.
func (d *Decoder) String() string {
	n := int(d.U32())
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Bytes reads an octet sequence.
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// F64Seq reads a sequence<double>.
func (d *Decoder) F64Seq() []float64 {
	n := int(d.U32())
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// ---------------------------------------------------------------------
// GIOP-shaped wire protocol.

type msgKind byte

const (
	kindRequest msgKind = iota
	kindReply
	kindException
)

// message header: [1B kind][4B reqID][4B bodyLen]
const msgHdrLen = 9

// ---------------------------------------------------------------------
// ORB.

// Method implements one operation of a servant.
type Method func(p *vtime.Proc, args *Decoder, reply *Encoder) error

// Servant is an object implementation: operation name -> method.
type Servant map[string]Method

// ORB is the per-node object request broker.
type ORB struct {
	k        *vtime.Kernel
	ep       *vlink.Endpoint
	profile  Profile
	driver   string
	port     int
	servants map[string]Servant
	conns    map[string]*clientConn

	Requests int64
	Served   int64
}

// New creates an ORB with the given profile, serving on the driver/port
// (its "IIOP endpoint"). Start the server with Activate.
func New(k *vtime.Kernel, ep *vlink.Endpoint, profile Profile, driver string, port int) *ORB {
	return &ORB{
		k: k, ep: ep, profile: profile, driver: driver, port: port,
		servants: make(map[string]Servant),
		conns:    make(map[string]*clientConn),
	}
}

// Profile returns the ORB's implementation profile.
func (o *ORB) Profile() Profile { return o.profile }

// ModuleName implements core.Module.
func (o *ORB) ModuleName() string { return o.profile.Name }

// RegisterServant binds an object key to a servant (POA activation).
func (o *ORB) RegisterServant(key string, s Servant) string {
	o.servants[key] = s
	return o.IOR(key)
}

// IOR returns the stringified reference for a local object key.
func (o *ORB) IOR(key string) string {
	return fmt.Sprintf("IOR:%d:%d/%s", o.ep.Node(), o.port, key)
}

// ParseIOR splits a stringified reference.
func ParseIOR(ior string) (node topology.NodeID, port int, key string, err error) {
	if !strings.HasPrefix(ior, "IOR:") {
		return 0, 0, "", ErrBadIOR
	}
	rest := ior[4:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return 0, 0, "", ErrBadIOR
	}
	key = rest[slash+1:]
	hostPort := strings.Split(rest[:slash], ":")
	if len(hostPort) != 2 {
		return 0, 0, "", ErrBadIOR
	}
	n, err1 := strconv.Atoi(hostPort[0])
	pt, err2 := strconv.Atoi(hostPort[1])
	if err1 != nil || err2 != nil {
		return 0, 0, "", ErrBadIOR
	}
	return topology.NodeID(n), pt, key, nil
}

// Activate starts the server loop on the ORB's endpoint.
func (o *ORB) Activate() error {
	ln, err := o.ep.Listen(o.driver, o.port)
	if err != nil {
		return err
	}
	ln.SetAcceptHandler(func(v *vlink.VLink) { o.serveConn(v) })
	return nil
}

// serveConn pumps one inbound connection.
func (o *ORB) serveConn(v *vlink.VLink) {
	fr := &framer{}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		fr.feed(buf[:n], func(kind msgKind, reqID uint32, body []byte) {
			o.dispatch(v, kind, reqID, body)
		})
		if err != nil {
			return
		}
		v.PostRead(buf).SetHandler(pump)
	}
	v.PostRead(buf).SetHandler(pump)
}

// dispatch runs one request through the servant and replies.
func (o *ORB) dispatch(v *vlink.VLink, kind msgKind, reqID uint32, body []byte) {
	if kind != kindRequest {
		return
	}
	if o.profile.Copying {
		body = append([]byte(nil), body...) // the Mico/ORBacus extra copy
	}
	// Unmarshal/dispatch cost, then servant execution on a fresh proc.
	cost := o.profile.RequestCost + o.profile.PerByte.Cost(len(body))
	o.k.Schedule(cost, func() {
		o.k.Go("orb-dispatch", func(p *vtime.Proc) {
			dec := NewDecoder(body)
			key := dec.String()
			op := dec.String()
			reply := NewEncoder()
			var status msgKind = kindReply
			srv, ok := o.servants[key]
			if !ok {
				status = kindException
				reply.PutString(ErrNoServant.Error())
			} else if m, ok := srv[op]; !ok {
				status = kindException
				reply.PutString(ErrNoOp.Error())
			} else if err := m(p, dec, reply); err != nil {
				status = kindException
				reply = NewEncoder()
				reply.PutString(err.Error())
			}
			o.Served++
			out := reply.Bytes()
			if o.profile.Copying {
				out = append([]byte(nil), out...)
			}
			// Reply marshal cost, then send.
			p.Consume(o.profile.RequestCost + o.profile.PerByte.Cost(len(out)))
			v.PostWrite(frame(status, reqID, out))
		})
	})
}

// ---------------------------------------------------------------------
// Client side.

// ObjectRef is a client-side reference to a remote object.
type ObjectRef struct {
	orb  *ORB
	node topology.NodeID
	port int
	key  string
}

// Resolve turns an IOR into an invocable reference.
func (o *ORB) Resolve(ior string) (*ObjectRef, error) {
	node, port, key, err := ParseIOR(ior)
	if err != nil {
		return nil, err
	}
	return &ObjectRef{orb: o, node: node, port: port, key: key}, nil
}

// clientConn multiplexes requests over one connection.
type clientConn struct {
	v       *vlink.VLink
	nextID  uint32
	waiters map[uint32]*vtime.Future[replyMsg]
}

type replyMsg struct {
	status msgKind
	body   []byte
}

func (o *ORB) connTo(p *vtime.Proc, node topology.NodeID, port int) (*clientConn, error) {
	keyStr := fmt.Sprintf("%d:%d", node, port)
	if cc, ok := o.conns[keyStr]; ok {
		return cc, nil
	}
	v, err := o.ep.ConnectWait(p, o.driver, vlink.Addr{Node: node, Port: port})
	if err != nil {
		return nil, err
	}
	cc := &clientConn{v: v, waiters: make(map[uint32]*vtime.Future[replyMsg])}
	o.conns[keyStr] = cc
	fr := &framer{}
	buf := make([]byte, 64<<10)
	var pump func(n int, err error)
	pump = func(n int, err error) {
		fr.feed(buf[:n], func(kind msgKind, reqID uint32, body []byte) {
			if f, ok := cc.waiters[reqID]; ok {
				delete(cc.waiters, reqID)
				if o.profile.Copying {
					body = append([]byte(nil), body...)
				}
				f.Complete(replyMsg{status: kind, body: body}, nil)
			}
		})
		if err != nil {
			return
		}
		v.PostRead(buf).SetHandler(pump)
	}
	v.PostRead(buf).SetHandler(pump)
	return cc, nil
}

// Invoke performs a synchronous request; args may be nil.
func (r *ObjectRef) Invoke(p *vtime.Proc, op string, args *Encoder) (*Decoder, error) {
	o := r.orb
	cc, err := o.connTo(p, r.node, r.port)
	if err != nil {
		return nil, err
	}
	o.Requests++
	body := NewEncoder()
	body.PutString(r.key)
	body.PutString(op)
	if args != nil {
		body.buf = append(body.buf, args.buf...)
	}
	payload := body.Bytes()
	if o.profile.Copying {
		payload = append([]byte(nil), payload...)
	}
	// Client marshal cost.
	p.Consume(o.profile.RequestCost + o.profile.PerByte.Cost(len(payload)))
	cc.nextID++
	id := cc.nextID
	f := vtime.NewFuture[replyMsg]("orb:reply")
	cc.waiters[id] = f
	cc.v.PostWrite(frame(kindRequest, id, payload))
	rep, _ := f.Wait(p)
	// Client unmarshal cost.
	p.Consume(o.profile.RequestCost + o.profile.PerByte.Cost(len(rep.body)))
	if rep.status == kindException {
		return nil, errors.New(NewDecoder(rep.body).String())
	}
	return NewDecoder(rep.body), nil
}

// ---------------------------------------------------------------------
// Framing shared by both sides.

func frame(kind msgKind, reqID uint32, body []byte) []byte {
	out := make([]byte, msgHdrLen, msgHdrLen+len(body))
	out[0] = byte(kind)
	binary.BigEndian.PutUint32(out[1:], reqID)
	binary.BigEndian.PutUint32(out[5:], uint32(len(body)))
	return append(out, body...)
}

type framer struct{ buf []byte }

func (fr *framer) feed(data []byte, emit func(kind msgKind, reqID uint32, body []byte)) {
	fr.buf = append(fr.buf, data...)
	for len(fr.buf) >= msgHdrLen {
		n := int(binary.BigEndian.Uint32(fr.buf[5:]))
		if len(fr.buf) < msgHdrLen+n {
			return
		}
		kind := msgKind(fr.buf[0])
		id := binary.BigEndian.Uint32(fr.buf[1:])
		body := append([]byte(nil), fr.buf[msgHdrLen:msgHdrLen+n]...)
		fr.buf = fr.buf[msgHdrLen+n:]
		emit(kind, id, body)
	}
}
