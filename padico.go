// Package padico is a Go reproduction of PadicoTM, the grid
// communication framework of:
//
//	A. Denis, C. Pérez, T. Priol. "Network Communications in Grid
//	Computing: At a Crossroads Between Parallel and Distributed
//	Worlds". IPDPS 2004.
//
// The framework decouples communication middleware (MPI, PVM, CORBA,
// SOAP, HLA, Java, DSM) from networking resources (Myrinet/SCI/VIA
// SANs, Ethernet LANs, WANs) through a dual-abstraction, three-layer
// model — arbitration (NetAccess: MadIO + SysIO), abstraction (VLink
// for the distributed paradigm, Circuit for the parallel one) and
// personalities (thin standard-API wrappers) — so that any middleware
// runs efficiently on any network, several at the same time.
//
// Everything runs on a deterministic virtual-time simulation of the
// paper's testbed (internal/vtime, internal/netsim): see DESIGN.md for
// the substitution table and EXPERIMENTS.md for reproduced results.
//
// Entry points:
//
//   - internal/session is the front door: a per-grid session.Manager
//     whose Open(src, dst, QoS options) consults the selector and
//     hands back one paradigm-agnostic Channel — local pipe, cached
//     SAN Circuit or (striped/ciphered/compressed) VLink stack —
//     with message and stream views plus the Decision taken;
//   - internal/grid builds complete testbeds (Cluster, TwoClusterWAN,
//     LossyPair) with a PadicoTM runtime per node; Grid.Session()
//     returns the testbed's manager and Grid.Open is its shorthand;
//   - internal/selector is the knowledge base the manager consults:
//     Select(topo, Request{Src, Dst, QoS}) per channel, Classify for
//     the coarse path class;
//   - internal/group layers grid-wide hierarchical collectives on the
//     session layer: a deterministic two-tier spanning tree (elected
//     site leaders across the WAN, binomial fan-out inside each
//     cluster) carrying Multicast/Reduce/Barrier/Gather with chunked
//     pipelining (Grid.NewGroup wires one onto a testbed);
//   - internal/datagrid layers a replicated data grid on the session
//     layer: ring placement across clusters and bulk transfers that
//     are a pure chunk pump over session channels; Put fan-out rides
//     group.Multicast when the tree saves WAN crossings
//     (Grid.NewDataGrid wires it onto a testbed);
//   - internal/bench regenerates every table and figure of the paper,
//     plus the data-grid replication experiment;
//   - examples/ holds runnable scenarios (quickstart, code coupling,
//     computation monitoring, WAN methods, datagrid);
//   - cmd/padico-bench prints the full evaluation, cmd/padico-info the
//     topology/selector view, cmd/padico-demo a traced quickstart.
package padico

// Version identifies this reproduction.
const Version = "1.0.0"
