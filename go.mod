module padico

go 1.24
