// Critical-path analysis of a replicated put: a small data grid
// ingests one object across the degrading WAN with tracing on, then
// the program asks the hub which spans actually determined the
// request's virtual-time makespan — the blocking chain — and prints
// the per-layer attribution table.
//
// With trace-context propagation, every span the put causes (the
// scheduler's transfers, the chunk writes, the receive side on the
// replica nodes, down to TCP segments) carries the put's trace id, so
// the analyzer sees one connected tree per request and the table below
// tells you where the time went: chunk pumping, session opens, or the
// wire.
package main

import (
	"bytes"
	"fmt"
	"time"

	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.DegradingWAN(1) // node 0 = site0, 1 = site1, 2 = site2
	tel := g.Telemetry()
	tel.EnableTracing()

	// The single replica lives on node 1 (site1): every put's synchronous
	// ingest crosses the site0-site1 core — the one that collapses.
	dg := g.NewDataGrid(datagrid.Config{Replicas: 1, Streams: 4})
	ring := datagrid.NewRing(0)
	ring.Add(topology.NodeID(1), "site1")
	dg.SetRing(ring)

	payload := bytes.Repeat([]byte("where did the makespan go? "), 2<<20/27)

	err := g.K.Run(func(p *vtime.Proc) {
		// One put while the WAN is healthy...
		if err := dg.Put(p, 0, "healthy", payload); err != nil {
			panic(err)
		}
		dg.WaitSettled(p)
		// ...and one after the site0-site1 core collapses: the same
		// request, a very different critical path.
		after := vtime.Time(0).Add(grid.DegradeAt + 250*time.Millisecond)
		p.Sleep(after.Sub(p.Now()))
		if err := dg.Put(p, 0, "degraded", payload); err != nil {
			panic(err)
		}
		dg.WaitSettled(p)
	})
	if err != nil {
		panic(err)
	}

	paths := tel.CriticalPaths()
	fmt.Printf("trace holds %d request roots; slowest first:\n\n", len(paths))
	fmt.Print(telemetry.FormatCriticalPaths(paths, 4))
	fmt.Println("\nthe share column is the fraction of the request's makespan the")
	fmt.Println("blocking chain spent in that (layer, span, node) — time hidden")
	fmt.Println("behind concurrent work is attributed to whatever was causally last.")
}
