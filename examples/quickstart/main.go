// Quickstart: the paper's headline capability in one file — a parallel
// middleware (MPI) and a distributed middleware (CORBA) running at the
// same time on the same Myrinet cluster, both at full speed, thanks to
// the arbitration + dual-abstraction + personality stack.
//
// The input data is staged through the session layer first: one
// g.Open call, and the selector transparently provisions the SAN
// parallel path — the same front door a WAN pair would get striped
// streams from, with no code change here.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/personality"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.Cluster(2)
	err := g.K.Run(func(p *vtime.Proc) {
		// Stage the dataset to node 1 through the paradigm-agnostic
		// session channel (the selector picks Myrinet/madio here).
		dataset := make([]byte, 1<<20)
		ch, err := g.Open(p, 0, 1)
		if err != nil {
			panic(err)
		}
		staged := vtime.NewWaitGroup("staged")
		staged.Add(1)
		g.K.Go("stage-in", func(q *vtime.Proc) {
			defer staged.Done()
			rc := ch.Remote()
			buf := make([]byte, len(dataset))
			if _, err := rc.ReadFull(q, buf); err != nil {
				panic(err)
			}
			rc.Close()
		})
		if _, err := ch.Write(p, dataset); err != nil {
			panic(err)
		}
		staged.Wait(p)
		ch.Close()
		info := ch.Info()
		fmt.Printf("staged %d KiB via session channel: %s (path class %s)\n",
			info.BytesOut>>10, info.Decision, info.Class)

		// Parallel side: MPI over the virtual-Madeleine personality.
		circs, err := g.NewCircuits(p, "app", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		mpi0 := mpi.New(g.K, personality.NewVMad(g.K, circs[0]))
		mpi1 := mpi.New(g.K, personality.NewVMad(g.K, circs[1]))

		// Distributed side: a CORBA servant on node 1.
		server := orb.New(g.K, g.RT[1].VLink, orb.OmniORB4, "madio", 5000)
		ior := server.RegisterServant("counter", orb.Servant{
			"get": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
				reply.PutU32(42)
				return nil
			},
		})
		if err := server.Activate(); err != nil {
			panic(err)
		}
		fmt.Println("servant activated:", ior)

		// Node 1: MPI worker echoing messages.
		g.K.GoDaemon("worker", func(q *vtime.Proc) {
			buf := make([]byte, 1<<20)
			for {
				st := mpi1.Recv(q, mpi.AnySource, mpi.AnyTag, buf)
				mpi1.Send(q, st.Source, st.Tag+1, buf[:st.Count])
			}
		})

		// Node 0: interleave MPI traffic with CORBA invocations.
		client := orb.New(g.K, g.RT[0].VLink, orb.OmniORB4, "madio", 5001)
		ref, err := client.Resolve(ior)
		if err != nil {
			panic(err)
		}
		payload := make([]byte, 256<<10)
		start := p.Now()
		for i := 0; i < 8; i++ {
			mpi0.Send(p, 1, 10, payload)
			mpi0.Recv(p, 1, 11, payload)
			dec, err := ref.Invoke(p, "get", nil)
			if err != nil {
				panic(err)
			}
			if v := dec.U32(); v != 42 {
				panic(fmt.Sprintf("counter = %d", v))
			}
		}
		elapsed := p.Now().Sub(start)
		fmt.Printf("8 MPI round-trips of 256 KiB + 8 CORBA calls in %v of simulated time\n", elapsed)
		fmt.Printf("MPI moved %d bytes; ORB served %d requests — on the same Myrinet, simultaneously\n",
			mpi0.BytesOut, server.Served)
	})
	if err != nil {
		panic(err)
	}
}
