// Multicast: hierarchical group communication across a star of three
// clusters. One 8 MiB object is pushed from a node in site0 to every
// other node of the grid through the two-tier spanning tree — one
// elected leader per site, striped WAN channels between leaders,
// Circuit fan-out inside each machine room — with chunks forwarded
// downstream while the next is still arriving. A flat fan-out would
// cross the WAN once per remote member (4x); the tree crosses once per
// remote site (2x). A Reduce and a Barrier ride the same tree.
package main

import (
	"fmt"
	"math/rand"

	"padico/internal/circuit"
	"padico/internal/grid"
	"padico/internal/group"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.MultiSite(3, 2)
	members := make([]topology.NodeID, len(g.Topo.Nodes()))
	for i := range members {
		members[i] = topology.NodeID(i)
	}
	grp, err := g.NewGroup(members, group.Config{})
	if err != nil {
		panic(err)
	}
	root := topology.NodeID(0)
	tree, err := grp.Tree(root)
	if err != nil {
		panic(err)
	}
	fmt.Printf("spanning tree over %d members in %d sites:\n%s", grp.Size(), len(g.Topo.Sites()), tree.String(g.Topo))
	fmt.Printf("WAN crossings: %d (flat fan-out would pay %d)\n\n", tree.WANCrossings(), 4)

	size := 8 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)

	if err := g.K.Run(func(p *vtime.Proc) {
		start := p.Now()
		got, err := grp.Multicast(p, root, "dataset", data, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("multicast: %d MiB to %d members, every copy sha256-verified\n", size>>20, len(got))
		fmt.Printf("  virtual-time makespan: %v\n", p.Now().Sub(start))
		fmt.Printf("  WAN bytes moved:       %.1f MB (payload is %.1f MB; one crossing per remote site)\n",
			float64(grp.WANBytes())/1e6, float64(size)/1e6)

		// The same tree carries the other collectives: a global sum and
		// a grid-wide barrier.
		start = p.Now()
		sum, err := grp.Reduce(p, root, func(n topology.NodeID) []float64 {
			return []float64{1, float64(n)}
		}, circuit.OpSum)
		if err != nil {
			panic(err)
		}
		fmt.Printf("reduce:    members=%g sum(id)=%g in %v\n", sum[0], sum[1], p.Now().Sub(start))

		start = p.Now()
		if err := grp.Barrier(p); err != nil {
			panic(err)
		}
		fmt.Printf("barrier:   all %d members in %v\n", grp.Size(), p.Now().Sub(start))
	}); err != nil {
		panic(err)
	}
}
