// Adaptive sessions: a WAN link degrades mid-transfer and the session
// visibly re-selects. The testbed is grid.DegradingWAN — at t=6s of
// virtual time the site0–site1 core collapses to 1/16 of its rate —
// with the network-weather service watching (RTT pings + bandwidth
// micro-transfers + passive taps). A bulk stream opened with
// session.WithAdaptive starts just before the degrade: once the
// forecast crosses the threshold, the selector's fresh decision stacks
// AdOC on the now-slow link, and the channel transparently re-opens
// with a sequence-numbered resume handshake — the application just
// keeps writing, and every byte arrives exactly once.
package main

import (
	"bytes"
	"fmt"
	"time"

	"padico/internal/grid"
	"padico/internal/session"
	"padico/internal/vtime"
	"padico/internal/weather"
)

func main() {
	g := grid.DegradingWAN(1) // node 0 = site0, 1 = site1, 2 = site2
	svc := g.EnableWeather(weather.Config{})

	fmt.Printf("testbed: 3 sites over a VTHD-like WAN; site0-site1 core degrades /%d at t=%v\n\n",
		grid.DegradeFactor, grid.DegradeAt)

	// A compressible payload (16 MB of repeated text): exactly the kind
	// of stream AdOC rescues on a slow link.
	payload := bytes.Repeat([]byte("the wide area is weather, not architecture; "), 16<<20/44)

	err := g.K.Run(func(p *vtime.Proc) {
		// Open the adaptive channel shortly before the degrade.
		start := vtime.Time(0).Add(grid.DegradeAt - 500*time.Millisecond)
		p.Sleep(start.Sub(p.Now()))
		ch, err := g.Open(p, 0, 1, session.WithAdaptive())
		if err != nil {
			panic(err)
		}
		before := ch.Info().Decision
		fmt.Printf("t=%-8v decision before: %s\n", p.Now(), before)

		done := vtime.NewWaitGroup("sink")
		done.Add(1)
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, len(payload))
			if _, err := ch.Remote().ReadFull(q, buf); err != nil {
				panic(err)
			}
			if !bytes.Equal(buf, payload) {
				panic("payload corrupted across the re-selection")
			}
			fmt.Printf("t=%-8v receiver verified all %d MB intact\n", q.Now(), len(payload)>>20)
		})

		const chunk = 128 << 10
		announced := false
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := ch.Write(p, payload[off:end]); err != nil {
				panic(err)
			}
			if info := ch.Info(); !announced && info.Reselects > 0 {
				announced = true
				fmt.Printf("t=%-8v decision after:  %s  (reselects=%d, resumes=%d)\n",
					p.Now(), info.Decision, info.Reselects, info.Resumes)
			}
		}
		done.Wait(p)

		info := ch.Info()
		fmt.Printf("\nstream finished at t=%v\n", p.Now())
		fmt.Printf("  %s -> %s\n", before, info.Decision)
		fmt.Printf("  reselects=%d resumes=%d bytes=%d MB\n",
			info.Reselects, info.Resumes, info.BytesOut>>20)
		fmt.Printf("\nweather registry:\n%s", svc.String())
		ch.Close()
		ch.Remote().Close()
	})
	if err != nil {
		panic(err)
	}
}
