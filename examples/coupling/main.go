// Coupling: the GridCCM-style scenario of §2.1 — an MPI-based parallel
// component coupled to a PVM-based parallel component through a CORBA
// link. Intra-component traffic rides the parallel abstraction
// (Circuit/MadIO/Myrinet); the inter-component channel is distributed
// (ORB over VLink), so each paradigm keeps its natural interface.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/personality"
	"padico/internal/pvm"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	// Nodes 0-1: MPI solver component. Nodes 2-3: PVM post-processing
	// component. All in one cluster for this demo.
	g := grid.Cluster(4)
	err := g.K.Run(func(p *vtime.Proc) {
		mpiCircs, err := g.NewCircuits(p, "solver", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		pvmCircs, err := g.NewCircuits(p, "post", []topology.NodeID{2, 3})
		if err != nil {
			panic(err)
		}
		solver0 := mpi.New(g.K, personality.NewVMad(g.K, mpiCircs[0]))
		solver1 := mpi.New(g.K, personality.NewVMad(g.K, mpiCircs[1]))
		post0 := pvm.New(g.K, pvmCircs[0]) // node 2
		post1 := pvm.New(g.K, pvmCircs[1]) // node 3

		// The PVM component exposes a CORBA facade on node 2.
		facade := orb.New(g.K, g.RT[2].VLink, orb.OmniORB4, "madio", 6000)
		results := vtime.NewQueue[[]float64]("results")
		facade.RegisterServant("post", orb.Servant{
			"process": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
				vec := args.F64Seq()
				// Fan the work to the PVM side.
				buf := pvm.NewBuffer()
				buf.PkInt(int64(len(vec)))
				for _, v := range vec {
					buf.PkDouble(v)
				}
				post0.Send(post1.MyTID(), 5, buf)
				res, _, _ := post0.Recv(q, post1.MyTID(), 6)
				n := int(res.UpkInt())
				out := make([]float64, n)
				for i := range out {
					out[i] = res.UpkDouble()
				}
				results.Push(out)
				reply.PutF64Seq(out)
				return nil
			},
		})
		if err := facade.Activate(); err != nil {
			panic(err)
		}

		// PVM worker (node 3): normalizes the vector.
		g.K.GoDaemon("pvm-worker", func(q *vtime.Proc) {
			for {
				in, src, _ := post1.Recv(q, pvm.AnyTID, 5)
				n := int(in.UpkInt())
				sum := 0.0
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = in.UpkDouble()
					sum += vals[i]
				}
				out := pvm.NewBuffer().PkInt(int64(n))
				for _, v := range vals {
					out.PkDouble(v / sum)
				}
				post1.Send(src, 6, out)
			}
		})

		// MPI solver: rank 1 computes partial sums, rank 0 reduces and
		// ships the result through the CORBA facade.
		g.K.GoDaemon("solver-rank1", func(q *vtime.Proc) {
			solver1.Allreduce(q, []float64{2, 4, 6, 8}, mpi.Sum)
		})
		total := solver0.Allreduce(p, []float64{1, 3, 5, 7}, mpi.Sum)
		fmt.Printf("MPI component reduced to %v\n", total)

		client := orb.New(g.K, g.RT[0].VLink, orb.OmniORB4, "madio", 6001)
		ref, err := client.Resolve(facade.IOR("post"))
		if err != nil {
			panic(err)
		}
		args := orb.NewEncoder()
		args.PutF64Seq(total)
		dec, err := ref.Invoke(p, "process", args)
		if err != nil {
			panic(err)
		}
		normalized := dec.F64Seq()
		fmt.Printf("PVM component normalized to %v (sums to 1)\n", normalized)
		fmt.Println("MPI <-> CORBA <-> PVM coupling complete: two parallel paradigms, one grid")
	})
	if err != nil {
		panic(err)
	}
}
