// Store: the durable pack engine under the datagrid, and the
// anti-entropy loop that keeps it honest. Every node persists its
// replicas as needles appended into bundle files (auklet-style pack
// storage) with simulated disk charges; a background auditor scrubs
// the needles against their recorded sha256 at a bounded rate. The
// demo puts a few objects, flips one byte of one needle on disk,
// watches the auditor quarantine it (with a flight-recorder dump),
// and lets the repair loop re-replicate the lost copy over the normal
// transfer path — ending at full replication with every copy
// verified, and the whole history durable across a reopen.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/store"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	dir, err := os.MkdirTemp("", "padico-store-demo-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g := grid.TwoClusterWAN(2, 2)
	g.Telemetry() // attach the hub: quarantines dump the flight recorder
	dg := g.NewPackDataGrid(dir, store.PackConfig{}, datagrid.Config{
		Replicas:       2,
		Streams:        4,
		AuditInterval:  500 * time.Millisecond,
		RepairInterval: 500 * time.Millisecond,
	})

	var victim topology.NodeID
	if err := g.K.Run(func(p *vtime.Proc) {
		// Ingest: each put appends a needle into the entry node's bundle
		// and replicates across the WAN into the remote site's bundles.
		data := make([]byte, 1<<20)
		rand.New(rand.NewSource(3)).Read(data)
		start := p.Now()
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, topology.NodeID(i%4), fmt.Sprintf("dataset-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		fmt.Printf("4x1 MiB ingested and replicated in %v (needles fsync-batched)\n", p.Now().Sub(start))

		// Bit rot: flip one byte of dataset-1's needle on one holder's
		// platter. Nothing notices yet — the index and catalog still
		// count the copy.
		victim = dg.Holders("dataset-1")[0]
		if !dg.EngineOn(victim).Corrupt("dataset-1") {
			panic("corrupt failed")
		}
		fmt.Printf("flipped one byte of dataset-1's needle on node %d\n", victim)

		// The background auditor scrubs every needle against its
		// recorded sha256; the mismatch is quarantined (see the flight
		// dump on stderr) and the kicked repair loop re-replicates from
		// the surviving copy.
		p.Sleep(2 * time.Second)
		dg.WaitSettled(p)
		st := dg.Stats()
		fmt.Printf("auditor quarantined %d needle(s), repair restored %d cop(ies)\n",
			st.Quarantines, st.Repairs)
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("dataset-%d", i)
			if err := dg.VerifyReplicas(name); err != nil {
				panic(err)
			}
			if len(dg.Holders(name)) != 2 {
				panic(name + " below replication factor")
			}
		}
		fmt.Println("every object back at replica factor 2, all copies verified")
		if lost := dg.LostObjects(); len(lost) != 0 {
			panic(fmt.Sprintf("lost: %v", lost))
		}
	}); err != nil {
		panic(err)
	}
	if err := dg.Close(); err != nil {
		panic(err)
	}

	// Durability: reopen the repaired node's bundles on a fresh kernel
	// and re-verify the needle the auditor replaced.
	eng, err := store.PackFactory(dir, store.PackConfig{})(vtime.NewKernel(), victim)
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	if _, ok := eng.Get("dataset-1"); !ok {
		panic("repaired needle missing after reopen")
	}
	fmt.Printf("node %d reopened from its bundles: repaired dataset-1 is durable\n", victim)
}
