// Datagrid: a replicated object store spanning two clusters — the
// canonical heavy-traffic grid workload riding both of the paper's
// worlds at once. Objects placed by a zone-aware consistent-hash ring
// get one replica per site; ingest inside a cluster uses the parallel
// paradigm (Circuit/Madeleine on Myrinet), while cross-site
// replication stripes each object over parallel WAN streams
// (VLink/pstreams). A late-joining node triggers a minimal rebalance.
package main

import (
	"fmt"
	"math/rand"

	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.TwoClusterWANLoss(2, 2, 0.01)
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Streams: 4})

	err := g.K.Run(func(p *vtime.Proc) {
		// Ingest a handful of objects from clients in both sites.
		data := make([]byte, 4<<20)
		rand.New(rand.NewSource(1)).Read(data)
		start := p.Now()
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("dataset-%d", i)
			if err := dg.Put(p, topology.NodeID(i%4), name, data); err != nil {
				panic(err)
			}
		}
		fmt.Printf("4x4 MiB ingested (first durable copy) in %v\n", p.Now().Sub(start))

		// Replication to the remote site settles in the background.
		start = p.Now()
		dg.WaitSettled(p)
		fmt.Printf("cross-site replication settled in %v\n", p.Now().Sub(start))
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("dataset-%d", i)
			if err := dg.VerifyReplicas(name); err != nil {
				panic(err)
			}
			meta, _ := dg.Meta(name)
			sites := []string{}
			for _, t := range meta.Targets {
				sites = append(sites, g.Topo.Node(t).Site)
			}
			fmt.Printf("  %s: replicas on nodes %v (sites %v)\n", name, meta.Targets, sites)
		}

		// A read from grenoble is served by the grenoble replica.
		start = p.Now()
		if _, err := dg.Get(p, 2, "dataset-0"); err != nil {
			panic(err)
		}
		fmt.Printf("GET from the co-sited replica took %v\n", p.Now().Sub(start))

		// Membership change: rebalance moves only the affected objects.
		moved := dg.RemoveMember(0)
		fmt.Printf("node 0 left the ring: %d replication jobs scheduled\n", moved)
		dg.WaitSettled(p)
		trimmed := dg.TrimExcess(p)
		fmt.Printf("rebalance settled, %d stale copies trimmed\n", trimmed)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("stats: %d puts, %d gets, %d jobs (%d circuit, %d vlink, %d local), %d retries, %.1f MB moved\n",
		dg.Stats().Puts, dg.Stats().Gets, dg.Stats().Jobs,
		dg.Stats().CircuitTransfers, dg.Stats().VLinkTransfers, dg.Stats().LocalTransfers,
		dg.Stats().Retries, float64(dg.Stats().BytesMoved)/1e6)
}
