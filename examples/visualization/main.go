// Visualization: §2.1's third scenario — a long-running MPI computation
// that a user connects to and disconnects from for monitoring, through
// two distributed middleware systems at once: SOAP for status polling
// and HLA for live attribute streaming. Dynamic connections are exactly
// what the distributed paradigm provides and the parallel one cannot.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/hla"
	"padico/internal/mpi"
	"padico/internal/personality"
	"padico/internal/soapx"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	// Nodes 0-2: the computation; node 3: the user's workstation.
	g := grid.Cluster(4)
	err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "sim", []topology.NodeID{0, 1, 2})
		if err != nil {
			panic(err)
		}
		comms := make([]*mpi.Comm, 3)
		for r := range comms {
			comms[r] = mpi.New(g.K, personality.NewVMad(g.K, circs[r]))
		}

		// Monitoring plane on the computation's rank 0.
		step := 0
		soapSrv, err := soapx.NewServer(g.K, g.RT[0].VLink, "sysio", 8080)
		if err != nil {
			panic(err)
		}
		soapSrv.Handle("GetStatus", func(q *vtime.Proc, params map[string]string) (map[string]string, error) {
			return map[string]string{"step": fmt.Sprint(step), "ranks": "3"}, nil
		})
		// The RTI executive lives on node 1; rank 0 and the viewer join it
		// over dynamic distributed connections.
		if _, err := hla.CreateFederation(g.K, g.RT[1].VLink, "viz", "sysio", 9100); err != nil {
			panic(err)
		}
		pub, err := hla.Join(p, g.RT[0].VLink, "sysio", 1, 9100, "sim")
		if err != nil {
			panic(err)
		}

		// The computation: iterative allreduce, publishing each residual.
		for r := 1; r < 3; r++ {
			r := r
			g.K.GoDaemon(fmt.Sprintf("rank%d", r), func(q *vtime.Proc) {
				for {
					comms[r].Allreduce(q, []float64{float64(r)}, mpi.Sum)
					comms[r].Barrier(q)
				}
			})
		}
		g.K.GoDaemon("rank0", func(q *vtime.Proc) {
			for {
				res := comms[0].Allreduce(q, []float64{0}, mpi.Sum)
				step++
				pub.UpdateAttributes(q, "Residual", []byte(fmt.Sprintf("%.1f", res[0])), float64(step))
				comms[0].Barrier(q)
			}
		})

		// The user connects from node 3 mid-run...
		p.Sleep(vtime.Duration(2e6)) // 2 ms into the computation
		cl, err := soapx.Dial(p, g.RT[3].VLink, "sysio", 0, 8080)
		if err != nil {
			panic(err)
		}
		status, err := cl.Call(p, "GetStatus", nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("SOAP monitor connected: computation at step %s on %s ranks\n",
			status["step"], status["ranks"])

		viewer, err := hla.Join(p, g.RT[3].VLink, "sysio", 1, 9100, "viewer")
		if err != nil {
			panic(err)
		}
		viewer.Subscribe(p, "Residual")
		for i := 0; i < 3; i++ {
			refl := viewer.NextReflection(p)
			fmt.Printf("HLA reflection: residual=%s at logical time %.0f\n", refl.Value, refl.Time)
		}

		// ...and disconnects. The computation never noticed.
		viewer.Resign()
		cl.Close()
		before := step
		p.Sleep(vtime.Duration(2e6))
		fmt.Printf("viewer disconnected; computation advanced from step %d to %d regardless\n", before, step)
	})
	if err != nil {
		panic(err)
	}
}
