// WAN methods: §3.2's alternate communication methods in action on the
// paper's two wide-area settings — parallel streams on a VTHD-like WAN
// (with transparent ciphering between sites), and VRP vs TCP on the
// lossy trans-continental link, with AdOC compression for compressible
// streams.
//
// Every comparison opens one session channel and steers the selector
// with per-channel QoS options; nothing here touches drivers, circuits
// or decisions by hand — the channel's Info reports what the selector
// actually provisioned.
package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"padico/internal/grid"
	"padico/internal/selector"
	"padico/internal/session"
	"padico/internal/vrp"
	"padico/internal/vtime"
)

// transfer opens a 0->1 session channel under the given QoS options,
// streams size bytes through it and returns the receiver-observed rate.
func transfer(g *grid.Grid, size int, payload func(int) []byte, opts ...session.Option) float64 {
	var rate float64
	err := g.K.Run(func(p *vtime.Proc) {
		ch, err := g.Open(p, 0, 1, opts...)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  selector picked: %s\n", ch.Info().Decision)
		done := vtime.NewWaitGroup("done")
		done.Add(1)
		var end vtime.Time
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			rc := ch.Remote()
			buf := make([]byte, 64<<10)
			total := 0
			for total < size {
				n, err := rc.Read(q, buf)
				total += n
				if err != nil && err != io.EOF {
					panic(err)
				}
				if err != nil {
					break
				}
			}
			end = q.Now()
		})
		start := p.Now()
		chunk := payload(256 << 10)
		sent := 0
		for sent < size {
			n := size - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			ch.Write(p, chunk[:n])
			sent += n
		}
		done.Wait(p)
		ch.Close()
		rate = float64(size) / end.Sub(start).Seconds()
	})
	if err != nil {
		panic(err)
	}
	return rate
}

func random(n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(b)
	return b
}

func compressible(n int) []byte {
	return bytes.Repeat([]byte("grid computing stream data "), n/27+1)[:n]
}

func main() {
	fmt.Println("=== VTHD-like WAN: one stream vs parallel streams (ciphered inter-site) ===")
	single := transfer(grid.TwoClusterWAN(1, 1), 8<<20, random,
		session.WithStreams(1), session.WithCipher(selector.CipherAlways),
		session.WithCompression(false))
	striped := transfer(grid.TwoClusterWAN(1, 1), 16<<20, random,
		session.WithStreams(4), session.WithCipher(selector.CipherAlways),
		session.WithCompression(false))
	fmt.Printf("single TCP stream:      %5.1f MB/s\n", single/1e6)
	fmt.Printf("4 parallel streams:     %5.1f MB/s (access link caps at ~12)\n", striped/1e6)

	fmt.Println()
	fmt.Println("=== Lossy trans-continental link ===")
	tcp := transfer(grid.LossyPair(), 512<<10, random,
		session.WithCipher(selector.CipherNever), session.WithCompression(false))
	fmt.Printf("TCP (full reliability): %6.0f KB/s\n", tcp/1e3)

	adocRate := transfer(grid.LossyPair(), 512<<10, compressible,
		session.WithCipher(selector.CipherNever), session.WithCompression(true))
	fmt.Printf("TCP + AdOC (text data): %6.0f KB/s effective\n", adocRate/1e3)

	// VRP with 10% tolerated loss.
	g := grid.LossyPair()
	err := g.K.Run(func(p *vtime.Proc) {
		ua, _ := g.Stack.Host(0).ListenUDP(7000)
		ub, _ := g.Stack.Host(1).ListenUDP(7001)
		sender := vrp.New(g.K, ua, 1, 7001, 0.10, 600e3)
		recv := vrp.New(g.K, ub, 0, 7000, 0.10, 600e3)
		payload := make([]byte, 1200)
		n := (512 << 10) / len(payload)
		start := p.Now()
		for i := 0; i < n; i++ {
			sender.Send(payload)
		}
		received := 0
		for {
			if _, ok := recv.RecvTimeout(p, 2*time.Second); !ok {
				break
			}
			received++
		}
		elapsed := p.Now().Sub(start).Seconds() - 2
		fmt.Printf("VRP (10%% loss allowed): %6.0f KB/s (skipped %.1f%%, retransmitted %d)\n",
			float64(received*len(payload))/elapsed/1e3,
			float64(sender.Stats().Skipped)/float64(n)*100, sender.Stats().Retransmitted)
	})
	if err != nil {
		panic(err)
	}
}
