// Tracing a degrading-WAN transfer: the telemetry hub watches a small
// adaptive stream cross the degrade instant, then the program reads
// its own trace — the top-5 slowest spans and the virtual instant the
// re-selection landed — and writes the full Chrome trace JSON to
// trace.json for Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// The hub must be attached (g.Telemetry()) before the observed layers
// are built; with tracing enabled every layer stamps spans with kernel
// virtual time, so the timeline below is simulation time, not wall
// clock.
package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"padico/internal/grid"
	"padico/internal/session"
	"padico/internal/vtime"
	"padico/internal/weather"
)

func main() {
	g := grid.DegradingWAN(1) // node 0 = site0, 1 = site1, 2 = site2
	tel := g.Telemetry()
	tel.EnableTracing()
	g.EnableWeather(weather.Config{})

	fmt.Printf("testbed: 3 sites over a VTHD-like WAN; site0-site1 core degrades /%d at t=%v\n\n",
		grid.DegradeFactor, grid.DegradeAt)

	payload := bytes.Repeat([]byte("every span below is stamped in virtual time; "), 8<<20/45)

	err := g.K.Run(func(p *vtime.Proc) {
		// Open the adaptive channel shortly before the degrade, so
		// roughly half the stream rides the re-selected stack.
		start := vtime.Time(0).Add(grid.DegradeAt - 500*time.Millisecond)
		p.Sleep(start.Sub(p.Now()))
		ch, err := g.Open(p, 0, 1, session.WithAdaptive())
		if err != nil {
			panic(err)
		}
		done := vtime.NewWaitGroup("sink")
		done.Add(1)
		g.K.Go("sink", func(q *vtime.Proc) {
			defer done.Done()
			buf := make([]byte, len(payload))
			if _, err := ch.Remote().ReadFull(q, buf); err != nil {
				panic(err)
			}
			if !bytes.Equal(buf, payload) {
				panic("payload corrupted across the re-selection")
			}
		})
		const chunk = 128 << 10
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := ch.Write(p, payload[off:end]); err != nil {
				panic(err)
			}
		}
		done.Wait(p)
		ch.Close()
		ch.Remote().Close()
	})
	if err != nil {
		panic(err)
	}

	// Read the run back out of the trace.
	spans := tel.Spans()
	fmt.Printf("captured %d trace events\n\n", len(spans))

	// Where did the re-selection land? The session emits a "reselect"
	// span around the reopen handshake and a "resume" instant when the
	// replay completes.
	for _, sp := range spans {
		switch {
		case sp.Cat == "session" && sp.Name == "reselect":
			fmt.Printf("reselect landed at t=%v (took %v): %s\n",
				sp.Start, sp.Dur, sp.Args)
		case sp.Cat == "session" && sp.Name == "resume":
			fmt.Printf("resume complete at t=%v: %s\n", sp.Start, sp.Args)
		}
	}

	// Top-5 slowest spans (instants carry no duration).
	sorted := make([]int, 0, len(spans))
	for i, sp := range spans {
		if !sp.Instant {
			sorted = append(sorted, i)
		}
	}
	sort.Slice(sorted, func(a, b int) bool {
		return spans[sorted[a]].Dur > spans[sorted[b]].Dur
	})
	if len(sorted) > 5 {
		sorted = sorted[:5]
	}
	fmt.Println("\ntop-5 slowest spans:")
	fmt.Printf("%-10s %-12s %12s %14s  %s\n", "layer", "span", "start", "duration", "args")
	for _, i := range sorted {
		sp := spans[i]
		fmt.Printf("%-10s %-12s %12v %14v  %s\n",
			sp.Cat, sp.Name, sp.Start, sp.Dur, sp.Args)
	}

	f, err := os.Create("trace.json")
	if err != nil {
		panic(err)
	}
	if err := tel.WriteTrace(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Println("\nwrote trace.json — load it in Perfetto or chrome://tracing")
}
