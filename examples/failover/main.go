// Failover: what the stack does when a node dies with traffic in
// flight. The demo replicates a working set across three sites, then
// crashes the SAN-preferred source in the middle of a GET: the
// transfer errors promptly instead of hanging, the client switches to
// the surviving WAN replica within the same GET, and the flight
// recorder dumps the moments around the crash. A failure detector
// then notices the silence, shrinks the placement ring, and the
// repair loop re-replicates every object the dead node held from
// weather-ranked surviving sources — back to full replication with
// nothing lost.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"padico/internal/datagrid"
	"padico/internal/faults"
	"padico/internal/grid"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.MultiSiteLoss(3, 2, 0.01) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	hub := g.Telemetry()
	dg := g.NewDataGrid(datagrid.Config{
		Replicas:       2,
		Streams:        4,
		RepairInterval: 500 * time.Millisecond,
	})
	inj := faults.NewInjector(g)

	// The failure detector is the bridge between the fault layer's
	// ground truth and the datagrid's view: a detected crash marks the
	// node down and shrinks the ring, which reroutes every placement the
	// victim was part of through the repair loop.
	var detectedAt vtime.Time
	det := faults.NewDetector(inj, 500*time.Millisecond, func(n topology.NodeID, down bool) {
		if down {
			if detectedAt == 0 {
				detectedAt = g.K.Now()
			}
			dg.MarkDown(n)
			dg.RemoveMember(n)
			return
		}
		dg.MarkUp(n)
		dg.AddMember(n, g.Topo.Node(n).Site)
	})
	det.Start()

	if err := g.K.Run(func(p *vtime.Proc) {
		// Ingest a replicated working set.
		data := make([]byte, 8<<20)
		rand.New(rand.NewSource(9)).Read(data)
		for i := 0; i < 4; i++ {
			if err := dg.Put(p, topology.NodeID(i), fmt.Sprintf("obj-%d", i), data); err != nil {
				panic(err)
			}
		}
		dg.WaitSettled(p)
		fmt.Println("4x8 MiB ingested, replica factor 2 across three sites")

		// Pick the GET so its preferred source is doomed: the client is
		// the victim's SAN neighbour, so the ranked holder list tries the
		// victim first and only then the WAN replica.
		victim := dg.Holders("obj-0")[0]
		var client topology.NodeID
		for _, n := range g.Topo.Nodes() {
			if n.Site == g.Topo.Node(victim).Site && n.ID != victim {
				client = n.ID
			}
		}
		fmt.Printf("node %d holds obj-0; crashing it 5ms into node %d's GET\n", victim, client)

		crashAt := p.Now().Add(5 * time.Millisecond)
		preCrash := dg.Stats()
		inj.ScheduleCrash(crashAt, victim)
		got, err := dg.Get(p, client, "obj-0")
		if err != nil {
			panic(fmt.Sprintf("GET did not survive the crash: %v", err))
		}
		if len(got) != len(data) {
			panic("short read")
		}
		fmt.Printf("GET survived: SAN source died mid-transfer, switched to the WAN replica, done %v after the crash\n",
			p.Now().Sub(crashAt))
		hub.DumpFlight("failover demo: GET completed across a source crash")

		// Let the detector notice and the repair loop re-replicate
		// everything the dead node held.
		for detectedAt == 0 {
			p.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("detector flagged node %d %v after the crash; ring shrunk to %d members\n",
			victim, detectedAt.Sub(crashAt), dg.Ring().Size())
		for {
			p.Sleep(250 * time.Millisecond)
			dg.WaitSettled(p)
			healed := true
			for i := 0; i < 4; i++ {
				if dg.VerifyReplicas(fmt.Sprintf("obj-%d", i)) != nil {
					healed = false
				}
			}
			if healed {
				break
			}
		}
		st := dg.Stats()
		fmt.Printf("repair loop restored full replication %v after the crash (%d repair transfers, %.1f MB moved)\n",
			p.Now().Sub(crashAt), st.Repairs-preCrash.Repairs,
			float64(st.BytesMoved-preCrash.BytesMoved)/1e6)
		if lost := dg.LostObjects(); len(lost) != 0 {
			panic(fmt.Sprintf("lost objects: %v", lost))
		}
		fmt.Println("zero objects lost")
	}); err != nil {
		panic(err)
	}
}
