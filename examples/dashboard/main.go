// The time-series dashboard end to end: run the sampled
// degrade → partition → heal scenario, print a terminal digest of the
// most telling tracks (core busy fraction, queued bytes, transfer
// p99), and write the full self-contained HTML dashboard to
// dash.html — one file, inline SVG, no external assets; open it in any
// browser.
//
// Every curve is virtual time: the sampler is a simulation daemon
// scraping the registry every 250ms of *simulated* time, so two runs
// of this program produce byte-identical dashboards.
package main

import (
	"fmt"
	"os"

	"padico/internal/bench"
	"padico/internal/grid"
	"padico/internal/vtime"
)

func main() {
	fmt.Printf("testbed: 3 sites over a VTHD-like WAN; site0-site1 core degrades /%d at t=%v,\n"+
		"then site1 is partitioned and healed. Sampler cadence %v of virtual time.\n\n",
		grid.DegradeFactor, grid.DegradeAt, bench.SeriesInterval)

	out := bench.SeriesRun()
	set := out.Sampler.Series()
	fmt.Printf("sampled %d scrapes into %d tracks\n\n", out.Sampler.Scrapes(), set.Len())

	// Terminal digest: the three curves that tell the story.
	for _, name := range []string{
		"netsim.hop.core:vthd:site0+site1.busy_frac",
		"netsim.hop.core:vthd:site0+site1.queued_bytes",
		"datagrid.transfer_latency.p99",
	} {
		tr := set.Get(name)
		if tr == nil {
			fmt.Printf("  %-48s (missing)\n", name)
			continue
		}
		lo, hi := tr.MinMax()
		peakAt := vtime.Time(0)
		for _, p := range tr.Points() {
			if p.V == hi {
				peakAt = p.T
				break
			}
		}
		fmt.Printf("  %-48s min %-12g peak %-12g at t=%v\n", name, lo, hi, peakAt)
	}

	for _, m := range out.Marks {
		fmt.Printf("\n  mark: %-9s at t=%v", m.Label, m.T)
	}
	fmt.Println()

	f, err := os.Create("dash.html")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashboard:", err)
		os.Exit(1)
	}
	if err := set.WriteDash(f, bench.SeriesDashOptions(out)); err != nil {
		fmt.Fprintln(os.Stderr, "dashboard:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dashboard:", err)
		os.Exit(1)
	}
	fmt.Println("\nwrote dash.html — open it in a browser (no server, no JS, just SVG)")
}
