// Benchmarks regenerating the paper's evaluation (§5): one benchmark
// per table/figure plus the ablations. Metrics are reported in
// simulated (virtual-time) units: vMB/s and v-µs — see DESIGN.md §4.
// Run with: go test -bench=. -benchmem
package padico

import (
	"strings"
	"testing"

	"padico/internal/bench"
	"padico/internal/orb"
)

// metric builds a whitespace-free metric unit name.
func metric(prefix, name string) string {
	name = strings.NewReplacer(" ", "_", "/", "_").Replace(name)
	return prefix + ":" + name
}

// BenchmarkFig3 regenerates every curve of Figure 3 (bandwidth vs
// message size over Myrinet-2000, plus the Ethernet reference).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := bench.Fig3()
		for _, s := range series {
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.MBps, metric("vMB_s@1MB", s.Name[:6]))
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (one-way latency and peak
// bandwidth per API/middleware over Myrinet-2000).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		for _, r := range rows {
			b.ReportMetric(r.OnewayUS, metric("v-us", r.Name))
		}
	}
}

// BenchmarkOverhead regenerates §5 ¶3: MadIO over Madeleine < 0.1 µs,
// and MPICH-in-Padico vs standalone.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := bench.Overhead()
		b.ReportMetric(o.MadIOCombinedUS, "v-us-madio-combined")
		b.ReportMetric(o.MadIOSeparateUS, "v-us-madio-separate")
		b.ReportMetric(o.MPIPadicoUS, "v-us-mpi-padico")
		b.ReportMetric(o.MPIDirectUS, "v-us-mpi-direct")
	}
}

// BenchmarkWAN regenerates §5 ¶4: single stream ~9 MB/s vs parallel
// streams ~12 MB/s on the VTHD-like WAN.
func BenchmarkWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := bench.WAN()
		b.ReportMetric(w.SingleMBps, "vMB_s-single")
		b.ReportMetric(w.StripedMBps, "vMB_s-striped")
	}
}

// BenchmarkVRP regenerates §5 ¶5: TCP ~150 KB/s vs VRP ~500 KB/s on the
// lossy trans-continental link.
func BenchmarkVRP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := bench.VRPBench()
		b.ReportMetric(v.TCPKBps, "vKB_s-tcp")
		b.ReportMetric(v.VRPKBps, "vKB_s-vrp")
		b.ReportMetric(v.VRPKBps/v.TCPKBps, "x-speedup")
	}
}

// BenchmarkAblationORBProfiles isolates the marshalling-copy effect
// (zero-copy omniORB vs copying Mico) at 1 MB.
func BenchmarkAblationORBProfiles(b *testing.B) {
	profiles := []orb.Profile{orb.OmniORB4, orb.Mico}
	for i := 0; i < b.N; i++ {
		for _, pr := range profiles {
			r := bench.ORBOnMyrinet(pr)
			_, mbps := bench.Measure(r, 1<<20, 8)
			b.ReportMetric(mbps, metric("vMB_s", pr.Name))
		}
	}
}

// BenchmarkAblationHeaderCombining isolates §4.1's header-combining
// design choice at the MadIO layer.
func BenchmarkAblationHeaderCombining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := bench.Overhead()
		b.ReportMetric(o.MadIOSeparateUS-o.MadIOCombinedUS, "v-us-saved")
	}
}

// BenchmarkDataGridWallClock is the hot-path allocation benchmark: one
// flat replica-3 striped datagrid run per iteration. Virtual-time
// metrics are pinned by determinism_test.go; allocs/op and B/op (run
// with -benchmem) are the zero-copy segment path's scoreboard.
func BenchmarkDataGridWallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.DataGridWallClock()
		b.ReportMetric(r.IngestMBps, "vMB_s-ingest")
		b.ReportMetric(r.ConvergeS, "v-s-converge")
	}
}

// BenchmarkTCPBulk isolates the ipstack segment path: 8 MB through one
// raw TCP connection across the WAN testbed.
func BenchmarkTCPBulk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(bench.TCPBulk(), "vMB_s")
	}
}

// BenchmarkGroupFanout runs the flat-vs-hierarchical replication
// fan-out experiment (replica factor 3 on the lossy two-cluster WAN):
// the spanning tree must move fewer WAN bytes and converge sooner.
func BenchmarkGroupFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.GroupBench()
		for _, r := range rows {
			mode := "flat"
			if r.Hierarchical {
				mode = "hier"
			}
			b.ReportMetric(r.WANMB, metric("vWAN_MB", mode))
			b.ReportMetric(r.ConvergeS, metric("v-s-converge", mode))
		}
	}
}

// BenchmarkWeather runs the adaptive-vs-static degrading-WAN workload
// (see BENCH_5.json): the adaptive run must finish sooner and move
// fewer bytes over the degraded core.
func BenchmarkWeather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.WeatherBench()
		for _, r := range rows {
			mode := "static"
			if r.Adaptive {
				mode = "adaptive"
			}
			b.ReportMetric(r.MakespanS, metric("v-s-makespan", mode))
			b.ReportMetric(r.DegradedLinkMB, metric("vMB-degraded", mode))
		}
	}
}
