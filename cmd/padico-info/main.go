// Command padico-info prints a grid topology and the selector's
// per-pair decisions — the knowledge-base view of §4.2.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/selector"
)

func main() {
	g := grid.TwoClusterWAN(2, 2)
	fmt.Println("=== Topology (two dual-network clusters + VTHD WAN) ===")
	fmt.Print(g.Topo.String())
	fmt.Println()

	fmt.Println("=== Selector decisions (default preferences) ===")
	nodes := g.Topo.Nodes()
	for i := range nodes {
		for j := range nodes {
			if i >= j {
				continue
			}
			d, err := selector.Choose(g.Topo, g.Prefs, nodes[i].ID, nodes[j].ID)
			if err != nil {
				fmt.Printf("%s <-> %s: %v\n", nodes[i].Name, nodes[j].Name, err)
				continue
			}
			fmt.Printf("%-4s <-> %-4s : %s\n", nodes[i].Name, nodes[j].Name, d)
		}
	}

	fmt.Println()
	fmt.Println("=== Lossy-pair decisions with loss tolerance ===")
	lg := grid.LossyPair()
	prefs := lg.Prefs
	prefs.LossTolerance = 0.10
	d, _ := selector.Choose(lg.Topo, prefs, 0, 1)
	fmt.Printf("%s <-> %s : %s\n", lg.Topo.Node(0).Name, lg.Topo.Node(1).Name, d)
}
