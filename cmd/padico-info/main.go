// Command padico-info prints a grid topology and the selector's
// per-pair decisions — the knowledge-base view of §4.2, queried through
// the per-request Select API the session layer uses.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/selector"
)

func main() {
	g := grid.TwoClusterWAN(2, 2)
	fmt.Println("=== Topology (two dual-network clusters + VTHD WAN) ===")
	fmt.Print(g.Topo.String())
	fmt.Println()

	fmt.Printf("=== Selector decisions (default QoS, cipher policy %q) ===\n",
		g.Prefs.Cipher)
	nodes := g.Topo.Nodes()
	for i := range nodes {
		for j := range nodes {
			if i >= j {
				continue
			}
			d, err := selector.Select(g.Topo, selector.Request{
				Src: nodes[i].ID, Dst: nodes[j].ID, QoS: g.Prefs})
			if err != nil {
				fmt.Printf("%s <-> %s: %v\n", nodes[i].Name, nodes[j].Name, err)
				continue
			}
			cls, _ := selector.Classify(g.Topo, nodes[i].ID, nodes[j].ID)
			fmt.Printf("%-4s <-> %-4s : %-5s : %s\n", nodes[i].Name, nodes[j].Name, cls, d)
		}
	}

	fmt.Println()
	fmt.Println("=== Per-channel QoS variations (node 0 <-> node 2) ===")
	a, b := nodes[0].ID, nodes[2].ID
	variations := []struct {
		label string
		tune  func(*selector.QoS)
	}{
		{"default (bulk)", func(*selector.QoS) {}},
		{"latency-sensitive", func(q *selector.QoS) { q.LatencySensitive = true }},
		{"cipher never", func(q *selector.QoS) { q.Cipher = selector.CipherNever }},
		{"single stream", func(q *selector.QoS) { q.Streams = 1 }},
	}
	for _, v := range variations {
		q := g.Prefs
		v.tune(&q)
		d, err := selector.Select(g.Topo, selector.Request{Src: a, Dst: b, QoS: q})
		if err != nil {
			fmt.Printf("%-18s : %v\n", v.label, err)
			continue
		}
		fmt.Printf("%-18s : %s\n", v.label, d)
	}

	fmt.Println()
	fmt.Println("=== Lossy-pair decisions with loss tolerance ===")
	lg := grid.LossyPair()
	q := lg.Prefs
	q.LossTolerance = 0.10
	d, _ := selector.Select(lg.Topo, selector.Request{Src: 0, Dst: 1, QoS: q})
	fmt.Printf("%s <-> %s : %s\n", lg.Topo.Node(0).Name, lg.Topo.Node(1).Name, d)
}
