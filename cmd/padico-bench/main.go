// Command padico-bench regenerates the paper's evaluation (§5) and
// prints each table/figure in the same shape the paper reports.
//
// Usage:
//
//	padico-bench [-fig3] [-table1] [-overhead] [-wan] [-vrp] [-datagrid] [-group] [-weather] [-store]
//	padico-bench -trace out.json [-metrics] [-critpath]
//	padico-bench -slo
//	padico-bench -partition
//	padico-bench -series out.json [-dash dash.html] [-prom metrics.prom]
//	padico-bench -list
//
// With no flags, every table runs. -trace, -metrics and -critpath
// instead execute the fully observed degrading-WAN workload
// (bench.TraceRun): -trace writes its Chrome trace-event JSON (load in
// Perfetto or chrome://tracing), -metrics prints the telemetry registry
// snapshot and writes the BENCH_6.json sidecar, -critpath prints the
// critical-path attribution of the slowest requests. -slo runs the
// SLO-monitored workload (bench.SLOBench) and writes BENCH_8.json.
// -partition runs the crash-partition-and-heal failure scenarios
// (bench.PartitionBench) and writes BENCH_9.json. -series, -dash and
// -prom execute the sampled degrade→partition→heal workload
// (bench.SeriesRun) once and export it three ways: deterministic
// time-series JSON (plus the BENCH_10.json sidecar), a self-contained
// HTML dashboard with inline-SVG timelines, and a Prometheus text
// exposition of the final snapshot. -list enumerates every bench with
// a one-line description and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"padico/internal/bench"
	"padico/internal/grid"
	"padico/internal/telemetry"
)

func main() {
	fig3 := flag.Bool("fig3", false, "Figure 3: bandwidth vs message size over Myrinet-2000")
	table1 := flag.Bool("table1", false, "Table 1: one-way latency and peak bandwidth")
	overhead := flag.Bool("overhead", false, "§5: MadIO and PadicoTM overheads")
	wan := flag.Bool("wan", false, "§5: VTHD WAN parallel streams")
	vrpf := flag.Bool("vrp", false, "§5: VRP on the lossy trans-continental link")
	dgf := flag.Bool("datagrid", false, "data grid: striped replication across the lossy WAN")
	grp := flag.Bool("group", false, "group: flat vs hierarchical replication fan-out")
	wthr := flag.Bool("weather", false, "weather: adaptive vs static selection on a degrading WAN")
	storef := flag.Bool("store", false, "store: memory vs durable pack engine, with the corrupt-and-repair drill (writes BENCH_7.json)")
	tracef := flag.String("trace", "", "write a Chrome trace of the observed degrading-WAN workload to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry registry snapshot of the observed workload (writes BENCH_6.json)")
	critpath := flag.Bool("critpath", false, "print the critical-path attribution of the observed workload's slowest requests")
	slof := flag.Bool("slo", false, "run the SLO-monitored degrading-WAN workload and print the alert table (writes BENCH_8.json)")
	partf := flag.Bool("partition", false, "run the crash-partition-and-heal failure scenarios (writes BENCH_9.json)")
	seriesf := flag.String("series", "", "write deterministic time-series JSON of the sampled degrade→partition→heal workload to this file (writes BENCH_10.json)")
	dashf := flag.String("dash", "", "write a self-contained HTML dashboard of the sampled workload to this file")
	promf := flag.String("prom", "", "write the sampled workload's final registry snapshot in Prometheus text exposition format to this file")
	listf := flag.Bool("list", false, "list every bench with a one-line description and exit")
	flag.Parse()
	if *listf {
		printList()
		os.Exit(0)
	}
	if *slof {
		runSLO()
	}
	if *partf {
		runPartition()
	}
	if *tracef != "" || *metrics || *critpath {
		runObserved(*tracef, *metrics, *critpath)
	}
	if *seriesf != "" || *dashf != "" || *promf != "" {
		runSeries(*seriesf, *dashf, *promf)
	}
	if *slof || *partf || *tracef != "" || *metrics || *critpath ||
		*seriesf != "" || *dashf != "" || *promf != "" {
		os.Exit(0)
	}
	all := !*fig3 && !*table1 && !*overhead && !*wan && !*vrpf && !*dgf && !*grp && !*wthr && !*storef

	if all || *fig3 {
		fmt.Println("=== Figure 3: bandwidth (MB/s) of middleware systems in PadicoTM over Myrinet-2000 ===")
		series := bench.Fig3()
		fmt.Printf("%-34s", "message size")
		for _, sz := range bench.Fig3Sizes {
			fmt.Printf("%10s", sizeLabel(sz))
		}
		fmt.Println()
		for _, s := range series {
			fmt.Printf("%-34s", s.Name)
			for _, pt := range s.Points {
				fmt.Printf("%10.1f", pt.MBps)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if all || *table1 {
		fmt.Println("=== Table 1: performance of middleware systems with PadicoTM over Myrinet-2000 ===")
		fmt.Printf("%-24s %18s %22s\n", "API or middleware", "oneway latency (us)", "max bandwidth (MB/s)")
		for _, r := range bench.Table1() {
			fmt.Printf("%-24s %18.2f %22.1f\n", r.Name, r.OnewayUS, r.PeakMBps)
		}
		fmt.Println()
	}

	if all || *overhead {
		fmt.Println("=== Overheads (§4.1, §5) ===")
		o := bench.Overhead()
		fmt.Printf("MadIO over plain Madeleine (header combining): %+.3f us  (paper: < 0.1 us)\n", o.MadIOCombinedUS)
		fmt.Printf("MadIO without header combining (ablation):     %+.3f us\n", o.MadIOSeparateUS)
		fmt.Printf("MPICH one-way inside PadicoTM:                 %.2f us\n", o.MPIPadicoUS)
		fmt.Printf("MPICH one-way standalone (direct Circuit):     %.2f us  (paper: roughly the same)\n", o.MPIDirectUS)
		fmt.Println()
	}

	if all || *wan {
		fmt.Println("=== VTHD WAN (§5) ===")
		w := bench.WAN()
		fmt.Printf("single TCP stream:        %5.1f MB/s  (paper: ~9 MB/s)\n", w.SingleMBps)
		fmt.Printf("parallel streams (x%d):    %5.1f MB/s  (paper: 12 MB/s, access-link cap)\n", w.Streams, w.StripedMBps)
		fmt.Println()
	}

	if all || *vrpf {
		fmt.Println("=== Lossy trans-continental link (§5) ===")
		v := bench.VRPBench()
		fmt.Printf("TCP/IP plain sockets:    %6.0f KB/s  (paper: 150 KB/s)\n", v.TCPKBps)
		fmt.Printf("VRP, %2.0f%% loss allowed:  %6.0f KB/s  (paper: ~500 KB/s, i.e. 3x)\n", v.Tolerance*100, v.VRPKBps)
		fmt.Printf("speedup: %.1fx, skipped fraction: %.1f%%\n", v.VRPKBps/v.TCPKBps, v.SkippedFrac*100)
		fmt.Println()
	}
	if all || *dgf {
		fmt.Printf("=== Data grid: %d objects x %dMB, two clusters, %.0f%% WAN loss ===\n",
			bench.DataGridObjects, bench.DataGridObjectSize>>20, bench.DataGridWANLoss*100)
		fmt.Printf("%8s %9s %14s %14s %14s %12s\n",
			"stripes", "replicas", "ingest MB/s", "converge (s)", "circuit jobs", "vlink jobs")
		for _, r := range bench.DataGridBench() {
			fmt.Printf("%8d %9d %14.1f %14.2f %14d %12d\n",
				r.Streams, r.Replicas, r.IngestMBps, r.ConvergeS, r.CircuitJobs, r.VLinkJobs)
		}
		fmt.Println()
	}
	if all || *grp {
		fmt.Printf("=== Group fan-out: replica factor 3, %d objects x %dMB, two clusters, %.0f%% WAN loss ===\n",
			bench.DataGridObjects, bench.DataGridObjectSize>>20, bench.DataGridWANLoss*100)
		fmt.Printf("%-13s %10s %14s %14s %12s %12s\n",
			"fan-out", "WAN MB", "ingest MB/s", "converge (s)", "group jobs", "vlink jobs")
		rows := bench.GroupBench()
		for _, r := range rows {
			mode := "flat"
			if r.Hierarchical {
				mode = "hierarchical"
			}
			fmt.Printf("%-13s %10.1f %14.1f %14.2f %12d %12d\n",
				mode, r.WANMB, r.IngestMBps, r.ConvergeS, r.GroupJobs, r.VLinkJobs)
		}
		flat, hier := rows[0], rows[1]
		fmt.Printf("hierarchical fan-out: %.1fx WAN bytes, %.1f%% lower makespan\n\n",
			hier.WANMB/flat.WANMB, 100*(1-hier.ConvergeS/flat.ConvergeS))
	}
	if all || *wthr {
		fmt.Printf("=== Network weather: adaptive vs static on DegradingWAN (site0-site1 core /%d at t=%v) ===\n",
			grid.DegradeFactor, grid.DegradeAt)
		fmt.Printf("%-9s %12s %10s %9s %14s %11s %9s %8s\n",
			"mode", "makespan (s)", "stream (s)", "gets (s)", "degraded MB", "src-switch", "reselect", "resume")
		rows := bench.WeatherBench()
		for _, r := range rows {
			mode := "static"
			if r.Adaptive {
				mode = "adaptive"
			}
			fmt.Printf("%-9s %12.2f %10.2f %9.2f %14.1f %11d %9d %8d\n",
				mode, r.MakespanS, r.StreamS, r.GetS, r.DegradedLinkMB,
				r.SourceSwitches, r.Reselects, r.Resumes)
		}
		st, ad := rows[0], rows[1]
		fmt.Printf("adaptive: %.1fx lower makespan, %.1fx fewer bytes over the degraded link\n\n",
			st.MakespanS/ad.MakespanS, st.DegradedLinkMB/ad.DegradedLinkMB)
	}
	if all || *storef {
		fmt.Printf("=== Store engines: %d objects x %dMB, replicas 2, two clusters, %.0f%% WAN loss ===\n",
			bench.StoreObjects, bench.StoreObjectSize>>20, bench.DataGridWANLoss*100)
		fmt.Printf("%-8s %11s %11s %10s %10s %12s %10s %6s\n",
			"engine", "put MB/s", "get MB/s", "scrub (s)", "corrupted", "quarantined", "repaired", "lost")
		rows := bench.StoreBench()
		for _, r := range rows {
			fmt.Printf("%-8s %11.1f %11.1f %10.3f %10d %12d %10d %6d\n",
				r.Engine, r.PutMBps, r.GetMBps, r.ScrubS, r.Corrupted, r.Quarantined, r.Repaired, r.Lost)
		}
		if *storef {
			if err := writeBench7(rows); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote BENCH_7.json")
		}
		fmt.Println()
	}
	os.Exit(0)
}

// writeBench7 writes the store table sidecar.
func writeBench7(rows []bench.StoreResult) error {
	doc := struct {
		PR      int                 `json:"pr"`
		Title   string              `json:"title"`
		Command string              `json:"command"`
		Note    string              `json:"note"`
		Table   []bench.StoreResult `json:"table"`
	}{
		PR:      7,
		Title:   "internal/store: durable pack-engine object store under datagrid, with background auditor and anti-entropy repair",
		Command: "go run ./cmd/padico-bench -store",
		Note: "The identical datagrid workload (8x1MB objects, replica factor 2, striped x4, lossy two-cluster WAN) " +
			"on both storage backends. The pack engine appends needles into bundle files with simulated disk " +
			"charges (seek, per-byte platter rates, batched fsync), so its ingest trails the zero-cost memory map. " +
			"The drill corrupts two needles on disk, one audit pass quarantines both, one repair pass restores " +
			"the replication factor over the normal transfer path, and no object is lost. Deterministic: " +
			"bit-identical across reruns, pinned by TestDeterminismStoreTable.",
		Table: rows,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_7.json", append(out, '\n'), 0o644)
}

// runObserved executes the traced workload once and serves the
// observability flags from the same hub.
func runObserved(tracePath string, metrics, critpath bool) {
	h := bench.TraceRun()
	if critpath {
		fmt.Println("=== Critical paths: slowest requests of the observed degrading-WAN workload ===")
		fmt.Print(telemetry.FormatCriticalPaths(h.CriticalPaths(), 5))
		fmt.Println()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := h.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (open in Perfetto or chrome://tracing)\n",
			len(h.Spans()), tracePath)
	}
	if metrics {
		snap := h.Registry().Snapshot()
		fmt.Println("=== Telemetry registry snapshot (observed degrading-WAN workload) ===")
		fmt.Print(telemetry.FormatSnapshot(snap))
		if err := writeBench6(snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_6.json")
	}
}

// bench6Row is one registry metric in the BENCH_6.json sidecar.
type bench6Row struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	P50US int64  `json:"p50_us,omitempty"`
	P99US int64  `json:"p99_us,omitempty"`
	SumUS int64  `json:"sum_us,omitempty"`
}

func writeBench6(snap []telemetry.Metric) error {
	rows := make([]bench6Row, 0, len(snap))
	for _, m := range snap {
		r := bench6Row{Name: m.Name}
		switch m.Kind {
		case telemetry.KindHistogram:
			r.Kind = "histogram"
			r.Count = m.Count
			r.P50US = m.P50.Microseconds()
			r.P99US = m.P99.Microseconds()
			r.SumUS = m.Sum.Microseconds()
		case telemetry.KindGauge:
			r.Kind = "gauge"
			r.Value = m.Value
		default:
			r.Kind = "counter"
			r.Value = m.Value
		}
		rows = append(rows, r)
	}
	doc := struct {
		PR      int         `json:"pr"`
		Title   string      `json:"title"`
		Command string      `json:"command"`
		Note    string      `json:"note"`
		Table   []bench6Row `json:"table"`
	}{
		PR:      6,
		Title:   "internal/telemetry: virtual-time tracing, unified metrics registry, and a flight recorder across the whole stack",
		Command: "go run ./cmd/padico-bench -metrics",
		Note: "Registry snapshot after one fully observed DegradingWAN run (bench.TraceRun): " +
			"weather monitoring on, adaptive striped data grid with hierarchical fan-out, one explicit " +
			"multicast+barrier round, a 4MB adaptive stream across the degrade instant, and a 3% loss " +
			"burst on the degraded core between t=2s and t=4s virtual. Counters come from the five layer " +
			"Stats structs bound into the shared registry; histograms are virtual-time latency ladders " +
			"(p50/p99 are bucket upper bounds on a 1-2-5 ladder). Deterministic: every figure is " +
			"bit-identical across reruns, pinned by TestDeterminismTrace.",
		Table: rows,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_6.json", append(out, '\n'), 0o644)
}

// runSLO executes the SLO-monitored workload, prints the alert table
// and writes the BENCH_8.json sidecar.
func runSLO() {
	mon := bench.SLOBench()
	fmt.Println("=== SLO monitor: virtual-time burn-rate alerts across the DegradingWAN degrade ===")
	fmt.Print(mon.FormatSLO())
	if err := writeBench8(mon.Status()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_8.json")
	fmt.Println()
}

// printList enumerates every bench the command can run.
func printList() {
	rows := []struct{ flagName, desc string }{
		{"-fig3", "Figure 3: bandwidth vs message size for each middleware over Myrinet-2000"},
		{"-table1", "Table 1: one-way latency and peak bandwidth per API or middleware"},
		{"-overhead", "MadIO header-combining and PadicoTM virtualization overheads (§4.1, §5)"},
		{"-wan", "VTHD WAN throughput: single TCP stream vs parallel striped streams (§5)"},
		{"-vrp", "VRP vs TCP on the lossy trans-continental link, with tolerated loss (§5)"},
		{"-datagrid", "striped replication across the lossy two-cluster WAN: ingest and convergence"},
		{"-group", "flat vs hierarchical replication fan-out: WAN bytes and makespan"},
		{"-weather", "adaptive vs static source selection while a WAN core degrades mid-run"},
		{"-store", "memory vs durable pack engine, with the corrupt-and-repair drill (BENCH_7.json)"},
		{"-trace FILE", "Chrome trace of the observed degrading-WAN workload (Perfetto-loadable)"},
		{"-metrics", "telemetry registry snapshot of the observed workload (BENCH_6.json)"},
		{"-critpath", "critical-path attribution of the observed workload's slowest requests"},
		{"-slo", "burn-rate SLO alerts across a degrade plus a site partition (BENCH_8.json)"},
		{"-partition", "failure scenarios: node crash, site blackout, WAN partition and heal (BENCH_9.json)"},
		{"-series FILE", "deterministic time-series of the sampled degrade→partition→heal run (BENCH_10.json)"},
		{"-dash FILE", "self-contained HTML dashboard (inline SVG) of the sampled run"},
		{"-prom FILE", "Prometheus text exposition of the sampled run's final snapshot"},
	}
	fmt.Println("padico-bench tables (no flags = all paper tables):")
	for _, r := range rows {
		fmt.Printf("  %-12s %s\n", r.flagName, r.desc)
	}
}

// runSeries executes the sampled workload once and serves all three
// export surfaces from the same run.
func runSeries(seriesPath, dashPath, promPath string) {
	out := bench.SeriesRun()
	set := out.Sampler.Series()
	fmt.Printf("=== Time-series: sampled degrade→partition→heal workload (%d tracks, %d scrapes) ===\n",
		set.Len(), out.Sampler.Scrapes())
	if seriesPath != "" {
		writeTo(seriesPath, set.WriteJSON)
		fmt.Printf("wrote %d series to %s\n", set.Len(), seriesPath)
		if err := writeBench10(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_10.json")
	}
	if dashPath != "" {
		opts := bench.SeriesDashOptions(out)
		writeTo(dashPath, func(w io.Writer) error { return set.WriteDash(w, opts) })
		fmt.Printf("wrote dashboard to %s (self-contained, open in any browser)\n", dashPath)
	}
	if promPath != "" {
		writeTo(promPath, out.Hub.WriteProm)
		fmt.Printf("wrote Prometheus exposition to %s\n", promPath)
	}
}

// writeTo creates path and runs emit on it, exiting on any error.
func writeTo(path string, emit func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = emit(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// bench10Row summarizes one track in the BENCH_10.json sidecar.
type bench10Row struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Unit   string  `json:"unit,omitempty"`
	Points int     `json:"points"`
	Peak   float64 `json:"peak"`
	Last   float64 `json:"last"`
}

func writeBench10(out bench.SeriesOutcome) error {
	set := out.Sampler.Series()
	rows := make([]bench10Row, 0, set.Len())
	for _, t := range set.Tracks() {
		_, hi := t.MinMax()
		rows = append(rows, bench10Row{Name: t.Name, Kind: t.Kind, Unit: t.Unit,
			Points: len(t.Points()), Peak: hi, Last: t.Last()})
	}
	doc := struct {
		PR      int          `json:"pr"`
		Title   string       `json:"title"`
		Command string       `json:"command"`
		Note    string       `json:"note"`
		Table   []bench10Row `json:"table"`
	}{
		PR:      10,
		Title:   "time-series telemetry: deterministic metric sampler, utilization and backpressure gauges, exposition and self-contained dashboard",
		Command: "go run ./cmd/padico-bench -series out.json -dash dash.html",
		Note: "A virtual-time sampler (250ms cadence) scrapes every registry metric of one degrade→partition→heal " +
			"run into bounded per-metric series: counter deltas as rates, gauges as levels, histograms as windowed " +
			"rate/p50/p99 tracks. New utilization and backpressure instrumentation feeds it: per-WAN-core-hop " +
			"busy-fraction and queued-bytes, iovec pool occupancy, session channel backlogs, datagrid scheduler " +
			"depth and in-flight transfers, and store fsync backlog. This table summarizes each track (points, " +
			"peak, final value); the full point data is the -series JSON, rendered by the -dash dashboard. " +
			"Deterministic: the series JSON is bit-identical across reruns, pinned by TestDeterminismSeries " +
			"(GC-coupled pool-miss counts are marked volatile and excluded).",
		Table: rows,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_10.json", append(enc, '\n'), 0o644)
}

// runPartition executes the failure scenarios, prints the table and
// writes the BENCH_9.json sidecar.
func runPartition() {
	rows := bench.PartitionBench()
	fmt.Println("=== Failure scenarios: crash, blackout and partition with self-healing recovery ===")
	fmt.Printf("%-14s %-18s %11s %12s %10s %8s %6s\n",
		"scenario", "testbed", "detect (s)", "recover (s)", "moved MB", "repairs", "lost")
	for _, r := range rows {
		fmt.Printf("%-14s %-18s %11.3f %12.3f %10.2f %8d %6d\n",
			r.Scenario, r.Testbed, r.DetectS, r.RecoverS, r.MovedMB, r.Repairs, r.Lost)
	}
	if err := writeBench9(rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_9.json")
	fmt.Println()
}

// writeBench9 writes the failure-scenario table sidecar.
func writeBench9(rows []bench.PartitionResult) error {
	doc := struct {
		PR      int                     `json:"pr"`
		Title   string                  `json:"title"`
		Command string                  `json:"command"`
		Note    string                  `json:"note"`
		Table   []bench.PartitionResult `json:"table"`
	}{
		PR:      9,
		Title:   "failure scenarios end-to-end: node crashes, site blackouts, WAN partitions, and self-healing rebalance",
		Command: "go run ./cmd/padico-bench -partition",
		Note: "Three failure modes injected into a replicated working set (8x1MB, replica factor 2). " +
			"node-crash and site-blackout kill the primary holder (alone, then with its whole site) on the " +
			"three-site lossy testbed: a 500ms-sweep failure detector shrinks the consistent-hash ring, and " +
			"the repair loop re-replicates every object that lost a copy from weather-ranked surviving " +
			"sources. wan-partition cuts the primary WAN core on the dual-homed testbed: the weather " +
			"forecast marks the wire down, placement re-selection moves reads onto the backup core, and the " +
			"moved MB column counts bytes the backup carried. detect is fault-to-first-detection, recover is " +
			"fault-to-reconvergence (every object verified at full replication, or a clean read round on the " +
			"rerouted wire). Zero objects lost in every scenario. Deterministic: bit-identical across " +
			"reruns, pinned by TestDeterminismPartitionTable.",
		Table: rows,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_9.json", append(out, '\n'), 0o644)
}

// bench8Row is one objective in the BENCH_8.json sidecar.
type bench8Row struct {
	Name     string    `json:"name"`
	Breaches int64     `json:"breaches"`
	Clears   int64     `json:"clears"`
	Breached bool      `json:"breached"`
	Burns    []float64 `json:"burns"`
}

func writeBench8(sts []telemetry.SLOStatus) error {
	rows := make([]bench8Row, 0, len(sts))
	for _, s := range sts {
		rows = append(rows, bench8Row{Name: s.Name, Breaches: s.Breaches,
			Clears: s.Clears, Breached: s.Breached, Burns: s.Burns})
	}
	doc := struct {
		PR      int         `json:"pr"`
		Title   string      `json:"title"`
		Command string      `json:"command"`
		Note    string      `json:"note"`
		Table   []bench8Row `json:"table"`
	}{
		PR:      8,
		Title:   "end-to-end causal tracing: propagated trace context, critical-path analysis, and virtual-time SLO monitoring",
		Command: "go run ./cmd/padico-bench -slo",
		Note: "Multi-window burn-rate SLO monitoring (windows 2s/8s virtual, alert at burn >= 2 on every window) over " +
			"one DegradingWAN ingest run: 4x1MB puts while healthy, 4 more after the site0-site1 core collapses to " +
			"1/16 rate at t=6s, a quiet tail, then a full site1 partition held for 6s and healed. The " +
			"transfer-latency objective breaches while the degraded-era transfers burn the 500ms budget and clears " +
			"when the short window cools; the recovery-availability objective breaches while the partition starves " +
			"the repair loop of fresh sources and clears after the heal; repair and probe-availability objectives " +
			"hold throughout. Deterministic: bit-identical across reruns, pinned by TestDeterminismSLOTable.",
		Table: rows,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_8.json", append(out, '\n'), 0o644)
}

func sizeLabel(sz int) string {
	switch {
	case sz >= 1<<20:
		return fmt.Sprintf("%dMB", sz>>20)
	case sz >= 1<<10:
		return fmt.Sprintf("%dKB", sz>>10)
	default:
		return fmt.Sprintf("%dB", sz)
	}
}
