// Command padico-demo runs the quickstart scenario with layer-by-layer
// tracing: it shows which networks exist, what the selector decided,
// and the per-layer message counters after a mixed MPI + CORBA run —
// a guided tour of the three-layer model.
package main

import (
	"fmt"

	"padico/internal/grid"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/personality"
	"padico/internal/selector"
	"padico/internal/topology"
	"padico/internal/vtime"
)

func main() {
	g := grid.Cluster(2)
	fmt.Println("== topology ==")
	fmt.Print(g.Topo.String())
	d, _ := selector.Select(g.Topo, selector.Request{Src: 0, Dst: 1, QoS: g.Prefs})
	fmt.Printf("selector: node 0 <-> node 1 via %s\n\n", d)

	err := g.K.Run(func(p *vtime.Proc) {
		circs, err := g.NewCircuits(p, "demo", []topology.NodeID{0, 1})
		if err != nil {
			panic(err)
		}
		m0 := mpi.New(g.K, personality.NewVMad(g.K, circs[0]))
		m1 := mpi.New(g.K, personality.NewVMad(g.K, circs[1]))
		if err := g.RT[0].RegisterModule(m0); err != nil {
			panic(err)
		}

		server := orb.New(g.K, g.RT[1].VLink, orb.OmniORB4, "madio", 5000)
		server.RegisterServant("echo", orb.Servant{
			"ping": func(q *vtime.Proc, args *orb.Decoder, reply *orb.Encoder) error {
				reply.PutString("pong")
				return nil
			},
		})
		if err := server.Activate(); err != nil {
			panic(err)
		}
		if err := g.RT[1].RegisterModule(server); err != nil {
			panic(err)
		}
		fmt.Printf("node 0 modules: %v\n", g.RT[0].Modules())
		fmt.Printf("node 1 modules: %v\n\n", g.RT[1].Modules())

		g.K.GoDaemon("mpi-echo", func(q *vtime.Proc) {
			buf := make([]byte, 64<<10)
			for {
				st := m1.Recv(q, mpi.AnySource, mpi.AnyTag, buf)
				m1.Send(q, st.Source, st.Tag, buf[:st.Count])
			}
		})
		client := orb.New(g.K, g.RT[0].VLink, orb.OmniORB4, "madio", 5001)
		ref, err := client.Resolve(server.IOR("echo"))
		if err != nil {
			panic(err)
		}

		payload := make([]byte, 64<<10)
		start := p.Now()
		for i := 0; i < 10; i++ {
			m0.Send(p, 1, 5, payload)
			m0.Recv(p, 1, 5, payload)
			dec, err := ref.Invoke(p, "ping", nil)
			if err != nil {
				panic(err)
			}
			if dec.String() != "pong" {
				panic("bad pong")
			}
		}
		fmt.Printf("mixed run took %v of simulated time\n\n", p.Now().Sub(start))

		fmt.Println("== per-layer counters (node 0) ==")
		fmt.Printf("MPI:       %d msgs out, %d msgs in\n", m0.MsgsSent, m0.MsgsRecv)
		fmt.Printf("ORB:       %d requests issued, %d served by node 1\n", client.Requests, server.Served)
		fmt.Printf("Circuit:   %d msgs out, %d msgs in\n", circs[0].MsgsSent, circs[0].MsgsRecv)
		myri := g.Topo.Networks()[0]
		mio := g.RT[0].MadIO[myri]
		fmt.Printf("MadIO:     %d msgs out, %d msgs in (both middleware multiplexed)\n", mio.MsgsSent, mio.MsgsRecv)
		fmt.Printf("NetAccess: %d events dispatched by the I/O manager\n", g.RT[0].NA.Dispatches)
	})
	if err != nil {
		panic(err)
	}
}
