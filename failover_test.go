// Failure-scenario gates: the acceptance tests of the fault-injection
// layer. A crashed peer must surface as a prompt typed error at every
// level — a session Recv blocked on a dead node wakes within a bounded
// virtual-time window (never a kernel deadlock), and a collective whose
// site leader dies mid-multicast fails fast and succeeds on retry over
// the re-elected tree.
package padico

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"padico/internal/faults"
	"padico/internal/grid"
	"padico/internal/group"
	"padico/internal/session"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// TestSessionPeerDeathUnblocksRecv crashes the peer of two blocked
// receivers — one on a WAN vlink channel, one on an intra-site message
// channel — and requires both to wake with an error within five virtual
// seconds of the crash, with the message-channel error typed
// session.ErrPeerDown.
func TestSessionPeerDeathUnblocksRecv(t *testing.T) {
	g := grid.MultiSiteLoss(2, 2, 0) // site0 {0,1}, site1 {2,3}
	inj := faults.NewInjector(g)
	var wanErr, sanErr error
	var crashAt, wanWake, sanWake vtime.Time
	if err := g.K.Run(func(p *vtime.Proc) {
		wan, err := g.Open(p, 0, 2) // cross-site: vlink substrate
		if err != nil {
			t.Fatalf("open WAN channel: %v", err)
		}
		san, err := g.Open(p, 0, 1) // intra-site: message substrate
		if err != nil {
			t.Fatalf("open SAN channel: %v", err)
		}
		done := vtime.NewWaitGroup("receivers")
		done.Add(2)
		g.K.Go("recv-wan", func(q *vtime.Proc) {
			defer done.Done()
			_, wanErr = wan.Recv(q, 8)
			wanWake = g.K.Now()
		})
		g.K.Go("recv-san", func(q *vtime.Proc) {
			defer done.Done()
			_, sanErr = san.Recv(q, 8)
			sanWake = g.K.Now()
		})
		p.Sleep(100 * time.Millisecond) // both receivers are parked
		crashAt = g.K.Now()
		inj.CrashNode(2)
		inj.CrashNode(1)
		done.Wait(p)
	}); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if wanErr == nil || sanErr == nil {
		t.Fatalf("blocked Recv survived a peer crash: wan=%v san=%v", wanErr, sanErr)
	}
	if !errors.Is(sanErr, session.ErrPeerDown) {
		t.Fatalf("message-channel error = %v, want session.ErrPeerDown", sanErr)
	}
	bound := crashAt.Add(5 * time.Second)
	if wanWake > bound || sanWake > bound {
		t.Fatalf("peer death surfaced too late: wan at %v, san at %v, crash at %v",
			wanWake, sanWake, crashAt)
	}
}

// TestGroupLeaderDeathMidCollective kills a site leader while a
// multicast is streaming through it. The in-flight operation must
// return a typed error promptly; after MarkDead, the retry runs over
// the re-elected tree (next-lowest id of the site takes over) and
// delivers to every surviving member.
func TestGroupLeaderDeathMidCollective(t *testing.T) {
	g := grid.MultiSiteLoss(3, 2, 0) // site0 {0,1}, site1 {2,3}, site2 {4,5}
	inj := faults.NewInjector(g)
	members := []topology.NodeID{0, 1, 2, 3, 4, 5}
	if err := g.K.Run(func(p *vtime.Proc) {
		grp, err := group.New(g.K, g.Topo, g.Session(), members, group.Config{})
		if err != nil {
			t.Fatalf("group: %v", err)
		}
		tr, err := grp.Tree(0)
		if err != nil {
			t.Fatalf("tree: %v", err)
		}
		if leader, ok := tr.Leader("site1"); !ok || leader != 2 {
			t.Fatalf("site1 leader = %d, want 2", leader)
		}
		// Warm the tree's edges so the crash hits an in-flight transfer,
		// not a channel open.
		if _, err := grp.Multicast(p, 0, "warm", []byte("warmup"), 1); err != nil {
			t.Fatalf("warmup multicast: %v", err)
		}
		// 8 MiB over a ~12 MB/s WAN keeps the multicast busy well past
		// the crash instant.
		payload := bytes.Repeat([]byte{0xAB}, 8<<20)
		t0 := g.K.Now()
		inj.ScheduleCrash(t0.Add(100*time.Millisecond), 2)
		_, err = grp.Multicast(p, 0, "big", payload, 1)
		if err == nil {
			t.Fatal("multicast through a crashed leader reported success")
		}
		var mErr *group.MulticastError
		if !errors.Is(err, group.ErrEdgeFailed) && !errors.As(err, &mErr) {
			t.Fatalf("multicast error = %v, want ErrEdgeFailed or MulticastError", err)
		}
		if elapsed := g.K.Now().Sub(t0); elapsed > 30*time.Second {
			t.Fatalf("leader death took %v to surface", elapsed)
		}
		grp.MarkDead(2)
		tr, err = grp.Tree(0)
		if err != nil {
			t.Fatalf("rebuilt tree: %v", err)
		}
		if leader, ok := tr.Leader("site1"); !ok || leader != 3 {
			t.Fatalf("re-elected site1 leader = %d, want 3", leader)
		}
		got, err := grp.Multicast(p, 0, "big", payload, 2)
		if err != nil {
			t.Fatalf("retry multicast on re-elected tree: %v", err)
		}
		for _, m := range grp.Alive() {
			if m == 0 {
				continue
			}
			if !bytes.Equal(got[m], payload) {
				t.Fatalf("member %d missing or corrupt after retry", m)
			}
		}
	}); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}
