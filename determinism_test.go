// Determinism regression gate: every pinned table must stay
// bit-identical — virtual times, byte counts and job splits alike.
//
// The DataGrid/Group/WAN tables were captured on the pre-iovec tree
// (seed of PR 4) and run with weather *disabled*: the monitoring
// subsystem (PR 5) must be invisible until a testbed enables it, so
// any drift here means a weather-era change leaked events into static
// runs. The weather table itself cannot be pinned against constants
// the same way (it is new), so it is pinned against a double run: two
// complete WeatherBench executions must agree bit for bit, which is
// the "no wall-clock reads, no unseeded randomness in probes or
// schedules" contract.
//
// CI runs `go test -run Determinism -count=2 .` so the whole gate is
// exercised twice per push.
package padico

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"padico/internal/bench"
	"padico/internal/datagrid"
	"padico/internal/grid"
	"padico/internal/telemetry"
	"padico/internal/topology"
	"padico/internal/vtime"
)

// fmtRow renders one datagrid/group table row with full float precision
// (%v prints the shortest exact representation, so any drift shows).
func fmtRow(r bench.DataGridResult) string {
	return fmt.Sprintf("streams=%d replicas=%d hier=%v ingest=%v converge=%v wanMB=%v circ=%d vlink=%d group=%d",
		r.Streams, r.Replicas, r.Hierarchical, r.IngestMBps, r.ConvergeS, r.WANMB,
		r.CircuitJobs, r.VLinkJobs, r.GroupJobs)
}

var seedDataGridTable = []string{
	"streams=1 replicas=2 hier=false ingest=227.7276362042672 converge=3.355014446 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=2 hier=false ingest=227.7276362042672 converge=1.669431838 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
}

var seedGroupTable = []string{
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
	"streams=4 replicas=3 hier=true ingest=227.7276362042672 converge=4.09418192 wanMB=16.777432 circ=2 vlink=0 group=4",
}

func TestDeterminismDataGridTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full datagrid table run")
	}
	rows := bench.DataGridBench()
	if len(rows) != len(seedDataGridTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedDataGridTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedDataGridTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedDataGridTable[i])
		}
	}
}

func TestDeterminismGroupTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full group table run")
	}
	rows := bench.GroupBench()
	if len(rows) != len(seedGroupTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedGroupTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedGroupTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedGroupTable[i])
		}
	}
}

func TestDeterminismWANTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full WAN run")
	}
	w := bench.WAN()
	const wantSingle, wantStriped = "8.942571519494994", "11.261711269578795"
	if got := fmt.Sprintf("%v", w.SingleMBps); got != wantSingle {
		t.Errorf("single-stream WAN rate drifted: got %s, seed %s", got, wantSingle)
	}
	if got := fmt.Sprintf("%v", w.StripedMBps); got != wantStriped {
		t.Errorf("striped WAN rate drifted: got %s, seed %s", got, wantStriped)
	}
}

// fmtWeatherRow renders one weather table row with full float
// precision.
func fmtWeatherRow(r bench.WeatherResult) string {
	return fmt.Sprintf("adaptive=%v makespan=%v stream=%v gets=%v degradedMB=%v switches=%d reselects=%d resumes=%d",
		r.Adaptive, r.MakespanS, r.StreamS, r.GetS, r.DegradedLinkMB,
		r.SourceSwitches, r.Reselects, r.Resumes)
}

// TestDeterminismWeatherTable pins the new adaptive-vs-static table:
// two complete WeatherBench runs must be bit-identical, the adaptive
// row must beat the static one on makespan and degraded-link bytes,
// and the adaptation events the acceptance criteria demand must fire.
func TestDeterminismWeatherTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full weather table run")
	}
	first := bench.WeatherBench()
	second := bench.WeatherBench()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("table has %d/%d rows, want 2", len(first), len(second))
	}
	for i := range first {
		a, b := fmtWeatherRow(first[i]), fmtWeatherRow(second[i])
		if a != b {
			t.Errorf("row %d drifted across reruns:\n run1 %s\n run2 %s", i, a, b)
		}
	}
	static, adaptive := first[0], first[1]
	if static.Adaptive || !adaptive.Adaptive {
		t.Fatalf("row order changed: %+v / %+v", static, adaptive)
	}
	if adaptive.MakespanS >= static.MakespanS {
		t.Errorf("adaptive makespan %v not below static %v", adaptive.MakespanS, static.MakespanS)
	}
	if adaptive.DegradedLinkMB >= static.DegradedLinkMB {
		t.Errorf("adaptive moved %v MB over the degraded link, static %v",
			adaptive.DegradedLinkMB, static.DegradedLinkMB)
	}
	if adaptive.SourceSwitches == 0 || adaptive.Reselects == 0 || adaptive.Resumes == 0 {
		t.Errorf("adaptation events missing: %+v", adaptive)
	}
	if static.SourceSwitches != 0 || static.Reselects != 0 || static.Resumes != 0 {
		t.Errorf("static run adapted: %+v", static)
	}
}

// fmtStoreRow renders one store table row with full float precision.
func fmtStoreRow(r bench.StoreResult) string {
	return fmt.Sprintf("engine=%s put=%v get=%v scrub=%v corrupted=%d quarantined=%d repaired=%d lost=%d",
		r.Engine, r.PutMBps, r.GetMBps, r.ScrubS, r.Corrupted, r.Quarantined, r.Repaired, r.Lost)
}

// TestDeterminismStoreTable pins the store engine table: two complete
// StoreBench runs must be bit-identical (the pack engine's disk
// charges are simulated virtual time, and its bundle files live in a
// fresh temp dir each run), the pack ingest must trail the free
// in-memory map, and the corrupt-and-repair drill must quarantine
// both injected rots and lose nothing on either backend.
func TestDeterminismStoreTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full store table run")
	}
	first := bench.StoreBench()
	second := bench.StoreBench()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("table has %d/%d rows, want 2", len(first), len(second))
	}
	for i := range first {
		a, b := fmtStoreRow(first[i]), fmtStoreRow(second[i])
		if a != b {
			t.Errorf("row %d drifted across reruns:\n run1 %s\n run2 %s", i, a, b)
		}
	}
	memory, pack := first[0], first[1]
	if memory.Engine != "memory" || pack.Engine != "pack" {
		t.Fatalf("row order changed: %+v / %+v", memory, pack)
	}
	if pack.PutMBps >= memory.PutMBps {
		t.Errorf("pack ingest %v not below the free memory map %v (no disk charged?)",
			pack.PutMBps, memory.PutMBps)
	}
	for _, r := range first {
		if r.Quarantined != r.Corrupted {
			t.Errorf("%s: audit caught %d of %d injected rots", r.Engine, r.Quarantined, r.Corrupted)
		}
		if r.Repaired < int64(r.Corrupted) {
			t.Errorf("%s: repaired %d < corrupted %d", r.Engine, r.Repaired, r.Corrupted)
		}
		if r.Lost != 0 {
			t.Errorf("%s: %d objects lost", r.Engine, r.Lost)
		}
	}
}

// TestDeterminismTrace pins the observability layer the same way the
// weather table is pinned: two complete TraceRun executions must
// serialize to byte-identical Chrome trace JSON. It also asserts the
// trace actually covers the stack — a span (or instant) from every
// instrumented layer — and that the registry snapshot carries the
// per-layer latency histograms.
func TestDeterminismTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced run")
	}
	h := bench.TraceRun()
	j1 := h.TraceJSON()
	j2 := bench.TraceRun().TraceJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("trace JSON drifted across reruns: %d vs %d bytes", len(j1), len(j2))
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(j1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := make(map[string]bool)
	for _, sp := range h.Spans() {
		cats[sp.Cat] = true
	}
	for _, want := range []string{"ipstack", "session", "selector", "datagrid", "group", "weather"} {
		if !cats[want] {
			t.Errorf("no spans from layer %q in the trace (got %v)", want, cats)
		}
	}
	snap := h.Registry().Snapshot()
	byName := make(map[string]telemetry.Metric, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}
	for _, want := range []string{
		"session.open_latency", "datagrid.transfer_latency",
		"group.op_latency", "weather.probe_rtt", "ipstack.rtt",
	} {
		m, ok := byName[want]
		if !ok || m.Count == 0 {
			t.Errorf("histogram %q missing or empty in snapshot (ok=%v count=%d)", want, ok, m.Count)
		}
	}
}

// TestDeterminismDataGridTrace double-runs the traced hierarchical
// data-grid workload and asserts byte-identical trace JSON.
func TestDeterminismDataGridTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced datagrid run")
	}
	if !bytes.Equal(bench.DataGridTrace(), bench.DataGridTrace()) {
		t.Fatal("datagrid trace JSON drifted across reruns")
	}
}

// TestDeterminismWeatherTrace double-runs the traced adaptive weather
// workload and asserts byte-identical trace JSON.
func TestDeterminismWeatherTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced weather run")
	}
	if !bytes.Equal(bench.WeatherTrace(), bench.WeatherTrace()) {
		t.Fatal("weather trace JSON drifted across reruns")
	}
}

// TestDeterminismCritPathTable double-runs the observed workload's
// critical-path analysis and asserts a byte-identical attribution
// table. It also checks the analysis is non-trivial: the slowest
// request's path crosses more than one layer.
func TestDeterminismCritPathTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced run")
	}
	render := func() string {
		h := bench.TraceRun()
		return telemetry.FormatCriticalPaths(h.CriticalPaths(), 5)
	}
	first := render()
	if second := render(); first != second {
		t.Fatalf("critical-path table drifted across reruns:\n run1:\n%s\n run2:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("critical-path table is empty")
	}
	h := bench.TraceRun()
	paths := h.CriticalPaths()
	if len(paths) == 0 {
		t.Fatal("no request roots in the trace")
	}
	multi := false
	for _, cp := range paths {
		layers := make(map[string]bool)
		for _, row := range cp.Rows {
			layers[row.Cat] = true
		}
		if len(layers) > 1 {
			multi = true
		}
		var covered vtime.Duration
		for _, sg := range cp.Segs {
			covered += sg.Dur
		}
		if covered != cp.Makespan {
			t.Errorf("path of span %d covers %v of a %v makespan", cp.RootID, covered, cp.Makespan)
		}
	}
	if !multi {
		t.Error("no critical path crosses a layer boundary")
	}
}

// TestDeterminismSLOTable double-runs the SLO-monitored degrading-WAN
// workload and asserts a byte-identical alert table, plus the alert
// lifecycle the acceptance criteria demand: the transfer-latency
// objective must both breach (degrade era) and clear (quiet tail),
// and the recovery-availability objective must breach while the site
// partition starves the repair loop of sources, then clear after the
// heal.
func TestDeterminismSLOTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full SLO-monitored run")
	}
	first := bench.SLOBench()
	second := bench.SLOBench()
	a, b := first.FormatSLO(), second.FormatSLO()
	if a != b {
		t.Fatalf("SLO table drifted across reruns:\n run1:\n%s\n run2:\n%s", a, b)
	}
	byName := make(map[string]telemetry.SLOStatus)
	for _, s := range first.Status() {
		byName[s.Name] = s
	}
	tr, ok := byName["datagrid-transfer-p99"]
	if !ok {
		t.Fatal("transfer-latency objective missing")
	}
	if tr.Breaches == 0 {
		t.Error("transfer-latency objective never breached across the degrade")
	}
	if tr.Clears == 0 {
		t.Error("transfer-latency alert never cleared in the quiet tail")
	}
	if tr.Breached {
		t.Error("transfer-latency alert still raised after the quiet tail")
	}
	rec, ok := byName["recovery-availability"]
	if !ok {
		t.Fatal("recovery-availability objective missing")
	}
	if rec.Breaches == 0 {
		t.Error("recovery-availability objective never breached across the site partition")
	}
	if rec.Clears == 0 {
		t.Error("recovery-availability alert never cleared after the heal")
	}
	if rec.Breached {
		t.Error("recovery-availability alert still raised after the heal tail")
	}
	for _, name := range []string{"repair-time-to-heal", "probe-availability"} {
		if s := byName[name]; s.Breached || s.Breaches != 0 {
			t.Errorf("objective %s breached (%+v) — the workload should hold it", name, s)
		}
	}
}

// fmtPartitionRow renders one failure-scenario row with full float
// precision.
func fmtPartitionRow(r bench.PartitionResult) string {
	return fmt.Sprintf("scenario=%s testbed=%s detect=%v recover=%v movedMB=%v repairs=%d lost=%d",
		r.Scenario, r.Testbed, r.DetectS, r.RecoverS, r.MovedMB, r.Repairs, r.Lost)
}

// TestDeterminismPartitionTable pins the crash-partition-and-heal
// table: two complete PartitionBench runs must be bit-identical, every
// scenario must reconverge in finite virtual time with zero lost
// objects, the crash scenarios must actually move repair traffic, and
// the WAN partition must push bytes over the backup wire.
func TestDeterminismPartitionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full failure-scenario run")
	}
	first := bench.PartitionBench()
	second := bench.PartitionBench()
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("table has %d/%d rows, want 3", len(first), len(second))
	}
	for i := range first {
		a, b := fmtPartitionRow(first[i]), fmtPartitionRow(second[i])
		if a != b {
			t.Errorf("row %d drifted across reruns:\n run1 %s\n run2 %s", i, a, b)
		}
	}
	for _, r := range first {
		if r.Lost != 0 {
			t.Errorf("%s: %d objects lost after recovery", r.Scenario, r.Lost)
		}
		if r.DetectS <= 0 {
			t.Errorf("%s: non-positive detection time %v", r.Scenario, r.DetectS)
		}
		if r.RecoverS <= r.DetectS {
			t.Errorf("%s: reconvergence %v not after detection %v", r.Scenario, r.RecoverS, r.DetectS)
		}
		if r.MovedMB <= 0 {
			t.Errorf("%s: no bytes moved while healing", r.Scenario)
		}
	}
	if first[0].Scenario != "node-crash" || first[1].Scenario != "site-blackout" || first[2].Scenario != "wan-partition" {
		t.Fatalf("row order changed: %+v", first)
	}
	if first[0].Repairs == 0 || first[1].Repairs == 0 {
		t.Errorf("crash scenarios completed no repair transfers: %+v", first[:2])
	}
	if first[1].Repairs <= first[0].Repairs {
		t.Errorf("site blackout repaired %d objects, single crash %d — blackout should lose more replicas",
			first[1].Repairs, first[0].Repairs)
	}
}

// TestDeterminismSeries pins the time-series sampler the same way the
// traces are pinned: two complete SeriesRun executions must serialize
// to byte-identical series JSON. Volatile metrics (iovec pool misses,
// which depend on wall-clock GC timing) are excluded by the sampler,
// so this holds even though the underlying sync.Pool is
// nondeterministic. It also asserts the coverage the acceptance
// criteria demand — tracks from at least six layers, including hop
// utilization, queue depth and pool occupancy — and that the degrade
// is visible in the data: the collapsed core's busy fraction after
// DegradeAt must dwarf its healthy-era level.
func TestDeterminismSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full sampled run")
	}
	first := bench.SeriesRun()
	j1 := first.Sampler.Series().JSON()
	j2 := bench.SeriesRun().Sampler.Series().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("series JSON drifted across reruns: %d vs %d bytes", len(j1), len(j2))
	}
	set := first.Sampler.Series()
	layers := make(map[string]bool)
	for _, tr := range set.Tracks() {
		if i := bytes.IndexByte([]byte(tr.Name), '.'); i > 0 {
			layers[tr.Name[:i]] = true
		}
	}
	if len(layers) < 6 {
		t.Errorf("series covers only %d layers: %v", len(layers), layers)
	}
	for _, want := range []string{
		"netsim.hop.core:vthd:site0+site1.busy_frac",
		"netsim.hop.core:vthd:site0+site1.queued_bytes",
		"iovec.pool_outstanding",
		"datagrid.sched_pending",
		"session.recv_backlog_msgs",
		"store.fsync_backlog_bytes",
		"datagrid.transfer_latency.p99",
	} {
		if set.Get(want) == nil {
			t.Errorf("track %q missing from the series", want)
		}
	}
	if set.Get("iovec.pool_misses") != nil {
		t.Error("volatile iovec.pool_misses leaked into the pinned series")
	}
	// The degrade must be visible: the collapsed core saturates right
	// after DegradeAt while the healthy era barely grazes it.
	busy := set.Get("netsim.hop.core:vthd:site0+site1.busy_frac")
	degradeAt := vtime.Time(0).Add(grid.DegradeAt)
	var before, after float64
	for _, p := range busy.Points() {
		if p.T <= degradeAt {
			if p.V > before {
				before = p.V
			}
		} else if p.V > after {
			after = p.V
		}
	}
	if after < 0.5 {
		t.Errorf("degraded core never saturated: peak busy fraction %v after degrade", after)
	}
	if before >= after/10 {
		t.Errorf("degrade not visible: healthy peak %v vs degraded peak %v", before, after)
	}
}

// TestTracePropagationConnectedTree is the tentpole acceptance test:
// one traced datagrid put over the degrading WAN must yield a single
// connected span tree — every span carrying the put's trace id is
// reachable from the put root through parent links, across node
// boundaries — and the tree must reach all the way down to TCP payload
// segments on every participating node (client, entry replica, fan-out
// replica).
func TestTracePropagationConnectedTree(t *testing.T) {
	g := grid.DegradingWAN(1) // node 0 = site0, 1 = site1, 2 = site2
	h := g.Telemetry()
	h.EnableTracing()
	dg := g.NewDataGrid(datagrid.Config{Replicas: 2, Streams: 4})
	ring := datagrid.NewRing(0)
	ring.Add(topology.NodeID(1), "site1")
	ring.Add(topology.NodeID(2), "site2")
	dg.SetRing(ring)
	payload := bytes.Repeat([]byte("causal"), 256<<10/6)
	if err := g.K.Run(func(p *vtime.Proc) {
		if err := dg.Put(p, 0, "traced", payload); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		dg.WaitSettled(p)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}

	spans := h.Spans()
	var root *telemetry.SpanInfo
	for i := range spans {
		if spans[i].Cat == "datagrid" && spans[i].Name == "put" {
			if root != nil {
				t.Fatal("more than one put root")
			}
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no put root span")
	}
	if root.Trace != root.ID {
		t.Fatalf("put span is not a trace root: trace %d, id %d", root.Trace, root.ID)
	}

	// Collect the request's spans and check the tree is connected: every
	// member's parent is another member (the root's parent is 0).
	members := make(map[int64]telemetry.SpanInfo)
	for _, sp := range spans {
		if sp.Trace == root.Trace {
			members[sp.ID] = sp
		}
	}
	if len(members) < 10 {
		t.Fatalf("suspiciously small request tree: %d spans", len(members))
	}
	nodes := make(map[int]bool)
	segNodes := make(map[int]bool)
	for _, sp := range members {
		nodes[sp.Tid] = true
		if sp.Cat == "ipstack" && sp.Name == "tcp.seg" {
			segNodes[sp.Tid] = true
		}
		if sp.ID == root.ID {
			if sp.Parent != 0 {
				t.Errorf("root has a parent: %d", sp.Parent)
			}
			continue
		}
		if sp.Parent == 0 {
			t.Errorf("span %d (%s/%s on node %d) is disconnected from the put root",
				sp.ID, sp.Cat, sp.Name, sp.Tid)
		} else if _, ok := members[sp.Parent]; !ok {
			t.Errorf("span %d (%s/%s on node %d) has parent %d outside the trace",
				sp.ID, sp.Cat, sp.Name, sp.Tid, sp.Parent)
		}
	}
	// The tree must span all three participants and carry TCP payload
	// segments on each: the client pushes chunks, the entry relays the
	// fan-out, and the far replica's credit/status frames ride TCP back.
	for _, n := range []int{0, 1, 2} {
		if !nodes[n] {
			t.Errorf("no spans from node %d in the request tree", n)
		}
		if !segNodes[n] {
			t.Errorf("no tcp.seg events from node %d in the request tree", n)
		}
	}
}
