// Determinism regression gate for the zero-copy segment path (PR 4):
// the buffer-management refactor must not move a single virtual-time
// event. These tables were captured on the pre-refactor tree (seed of
// PR 4) and every entry must stay bit-identical — virtual times, byte
// counts and job splits alike. A failure here means an optimisation
// changed simulated behaviour, not just memory traffic.
package padico

import (
	"fmt"
	"testing"

	"padico/internal/bench"
)

// fmtRow renders one datagrid/group table row with full float precision
// (%v prints the shortest exact representation, so any drift shows).
func fmtRow(r bench.DataGridResult) string {
	return fmt.Sprintf("streams=%d replicas=%d hier=%v ingest=%v converge=%v wanMB=%v circ=%d vlink=%d group=%d",
		r.Streams, r.Replicas, r.Hierarchical, r.IngestMBps, r.ConvergeS, r.WANMB,
		r.CircuitJobs, r.VLinkJobs, r.GroupJobs)
}

var seedDataGridTable = []string{
	"streams=1 replicas=2 hier=false ingest=227.7276362042672 converge=3.355014446 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=2 hier=false ingest=227.7276362042672 converge=1.669431838 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
}

var seedGroupTable = []string{
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
	"streams=4 replicas=3 hier=true ingest=227.7276362042672 converge=4.09418192 wanMB=16.777432 circ=2 vlink=0 group=4",
}

func TestDataGridTableBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full datagrid table run")
	}
	rows := bench.DataGridBench()
	if len(rows) != len(seedDataGridTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedDataGridTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedDataGridTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedDataGridTable[i])
		}
	}
}

func TestGroupTableBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full group table run")
	}
	rows := bench.GroupBench()
	if len(rows) != len(seedGroupTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedGroupTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedGroupTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedGroupTable[i])
		}
	}
}

func TestWANTableBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full WAN run")
	}
	w := bench.WAN()
	const wantSingle, wantStriped = "8.942571519494994", "11.261711269578795"
	if got := fmt.Sprintf("%v", w.SingleMBps); got != wantSingle {
		t.Errorf("single-stream WAN rate drifted: got %s, seed %s", got, wantSingle)
	}
	if got := fmt.Sprintf("%v", w.StripedMBps); got != wantStriped {
		t.Errorf("striped WAN rate drifted: got %s, seed %s", got, wantStriped)
	}
}
