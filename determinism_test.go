// Determinism regression gate: every pinned table must stay
// bit-identical — virtual times, byte counts and job splits alike.
//
// The DataGrid/Group/WAN tables were captured on the pre-iovec tree
// (seed of PR 4) and run with weather *disabled*: the monitoring
// subsystem (PR 5) must be invisible until a testbed enables it, so
// any drift here means a weather-era change leaked events into static
// runs. The weather table itself cannot be pinned against constants
// the same way (it is new), so it is pinned against a double run: two
// complete WeatherBench executions must agree bit for bit, which is
// the "no wall-clock reads, no unseeded randomness in probes or
// schedules" contract.
//
// CI runs `go test -run Determinism -count=2 .` so the whole gate is
// exercised twice per push.
package padico

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"padico/internal/bench"
	"padico/internal/telemetry"
)

// fmtRow renders one datagrid/group table row with full float precision
// (%v prints the shortest exact representation, so any drift shows).
func fmtRow(r bench.DataGridResult) string {
	return fmt.Sprintf("streams=%d replicas=%d hier=%v ingest=%v converge=%v wanMB=%v circ=%d vlink=%d group=%d",
		r.Streams, r.Replicas, r.Hierarchical, r.IngestMBps, r.ConvergeS, r.WANMB,
		r.CircuitJobs, r.VLinkJobs, r.GroupJobs)
}

var seedDataGridTable = []string{
	"streams=1 replicas=2 hier=false ingest=227.7276362042672 converge=3.355014446 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=2 hier=false ingest=227.7276362042672 converge=1.669431838 wanMB=16.778024 circ=2 vlink=4 group=0",
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
}

var seedGroupTable = []string{
	"streams=4 replicas=3 hier=false ingest=227.7276362042672 converge=4.478756114 wanMB=33.556048 circ=2 vlink=8 group=0",
	"streams=4 replicas=3 hier=true ingest=227.7276362042672 converge=4.09418192 wanMB=16.777432 circ=2 vlink=0 group=4",
}

func TestDeterminismDataGridTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full datagrid table run")
	}
	rows := bench.DataGridBench()
	if len(rows) != len(seedDataGridTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedDataGridTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedDataGridTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedDataGridTable[i])
		}
	}
}

func TestDeterminismGroupTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full group table run")
	}
	rows := bench.GroupBench()
	if len(rows) != len(seedGroupTable) {
		t.Fatalf("table has %d rows, seed had %d", len(rows), len(seedGroupTable))
	}
	for i, r := range rows {
		if got := fmtRow(r); got != seedGroupTable[i] {
			t.Errorf("row %d drifted:\n got  %s\n seed %s", i, got, seedGroupTable[i])
		}
	}
}

func TestDeterminismWANTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full WAN run")
	}
	w := bench.WAN()
	const wantSingle, wantStriped = "8.942571519494994", "11.261711269578795"
	if got := fmt.Sprintf("%v", w.SingleMBps); got != wantSingle {
		t.Errorf("single-stream WAN rate drifted: got %s, seed %s", got, wantSingle)
	}
	if got := fmt.Sprintf("%v", w.StripedMBps); got != wantStriped {
		t.Errorf("striped WAN rate drifted: got %s, seed %s", got, wantStriped)
	}
}

// fmtWeatherRow renders one weather table row with full float
// precision.
func fmtWeatherRow(r bench.WeatherResult) string {
	return fmt.Sprintf("adaptive=%v makespan=%v stream=%v gets=%v degradedMB=%v switches=%d reselects=%d resumes=%d",
		r.Adaptive, r.MakespanS, r.StreamS, r.GetS, r.DegradedLinkMB,
		r.SourceSwitches, r.Reselects, r.Resumes)
}

// TestDeterminismWeatherTable pins the new adaptive-vs-static table:
// two complete WeatherBench runs must be bit-identical, the adaptive
// row must beat the static one on makespan and degraded-link bytes,
// and the adaptation events the acceptance criteria demand must fire.
func TestDeterminismWeatherTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full weather table run")
	}
	first := bench.WeatherBench()
	second := bench.WeatherBench()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("table has %d/%d rows, want 2", len(first), len(second))
	}
	for i := range first {
		a, b := fmtWeatherRow(first[i]), fmtWeatherRow(second[i])
		if a != b {
			t.Errorf("row %d drifted across reruns:\n run1 %s\n run2 %s", i, a, b)
		}
	}
	static, adaptive := first[0], first[1]
	if static.Adaptive || !adaptive.Adaptive {
		t.Fatalf("row order changed: %+v / %+v", static, adaptive)
	}
	if adaptive.MakespanS >= static.MakespanS {
		t.Errorf("adaptive makespan %v not below static %v", adaptive.MakespanS, static.MakespanS)
	}
	if adaptive.DegradedLinkMB >= static.DegradedLinkMB {
		t.Errorf("adaptive moved %v MB over the degraded link, static %v",
			adaptive.DegradedLinkMB, static.DegradedLinkMB)
	}
	if adaptive.SourceSwitches == 0 || adaptive.Reselects == 0 || adaptive.Resumes == 0 {
		t.Errorf("adaptation events missing: %+v", adaptive)
	}
	if static.SourceSwitches != 0 || static.Reselects != 0 || static.Resumes != 0 {
		t.Errorf("static run adapted: %+v", static)
	}
}

// fmtStoreRow renders one store table row with full float precision.
func fmtStoreRow(r bench.StoreResult) string {
	return fmt.Sprintf("engine=%s put=%v get=%v scrub=%v corrupted=%d quarantined=%d repaired=%d lost=%d",
		r.Engine, r.PutMBps, r.GetMBps, r.ScrubS, r.Corrupted, r.Quarantined, r.Repaired, r.Lost)
}

// TestDeterminismStoreTable pins the store engine table: two complete
// StoreBench runs must be bit-identical (the pack engine's disk
// charges are simulated virtual time, and its bundle files live in a
// fresh temp dir each run), the pack ingest must trail the free
// in-memory map, and the corrupt-and-repair drill must quarantine
// both injected rots and lose nothing on either backend.
func TestDeterminismStoreTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full store table run")
	}
	first := bench.StoreBench()
	second := bench.StoreBench()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("table has %d/%d rows, want 2", len(first), len(second))
	}
	for i := range first {
		a, b := fmtStoreRow(first[i]), fmtStoreRow(second[i])
		if a != b {
			t.Errorf("row %d drifted across reruns:\n run1 %s\n run2 %s", i, a, b)
		}
	}
	memory, pack := first[0], first[1]
	if memory.Engine != "memory" || pack.Engine != "pack" {
		t.Fatalf("row order changed: %+v / %+v", memory, pack)
	}
	if pack.PutMBps >= memory.PutMBps {
		t.Errorf("pack ingest %v not below the free memory map %v (no disk charged?)",
			pack.PutMBps, memory.PutMBps)
	}
	for _, r := range first {
		if r.Quarantined != r.Corrupted {
			t.Errorf("%s: audit caught %d of %d injected rots", r.Engine, r.Quarantined, r.Corrupted)
		}
		if r.Repaired < int64(r.Corrupted) {
			t.Errorf("%s: repaired %d < corrupted %d", r.Engine, r.Repaired, r.Corrupted)
		}
		if r.Lost != 0 {
			t.Errorf("%s: %d objects lost", r.Engine, r.Lost)
		}
	}
}

// TestDeterminismTrace pins the observability layer the same way the
// weather table is pinned: two complete TraceRun executions must
// serialize to byte-identical Chrome trace JSON. It also asserts the
// trace actually covers the stack — a span (or instant) from every
// instrumented layer — and that the registry snapshot carries the
// per-layer latency histograms.
func TestDeterminismTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced run")
	}
	h := bench.TraceRun()
	j1 := h.TraceJSON()
	j2 := bench.TraceRun().TraceJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("trace JSON drifted across reruns: %d vs %d bytes", len(j1), len(j2))
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(j1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := make(map[string]bool)
	for _, sp := range h.Spans() {
		cats[sp.Cat] = true
	}
	for _, want := range []string{"ipstack", "session", "selector", "datagrid", "group", "weather"} {
		if !cats[want] {
			t.Errorf("no spans from layer %q in the trace (got %v)", want, cats)
		}
	}
	snap := h.Registry().Snapshot()
	byName := make(map[string]telemetry.Metric, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}
	for _, want := range []string{
		"session.open_latency", "datagrid.transfer_latency",
		"group.op_latency", "weather.probe_rtt", "ipstack.rtt",
	} {
		m, ok := byName[want]
		if !ok || m.Count == 0 {
			t.Errorf("histogram %q missing or empty in snapshot (ok=%v count=%d)", want, ok, m.Count)
		}
	}
}

// TestDeterminismDataGridTrace double-runs the traced hierarchical
// data-grid workload and asserts byte-identical trace JSON.
func TestDeterminismDataGridTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced datagrid run")
	}
	if !bytes.Equal(bench.DataGridTrace(), bench.DataGridTrace()) {
		t.Fatal("datagrid trace JSON drifted across reruns")
	}
}

// TestDeterminismWeatherTrace double-runs the traced adaptive weather
// workload and asserts byte-identical trace JSON.
func TestDeterminismWeatherTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced weather run")
	}
	if !bytes.Equal(bench.WeatherTrace(), bench.WeatherTrace()) {
		t.Fatal("weather trace JSON drifted across reruns")
	}
}
